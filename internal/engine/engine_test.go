package engine

import (
	"strings"
	"testing"

	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/datagen"
	"github.com/corleone-em/corleone/internal/record"
)

// TestRunRestaurantsOracle runs the full pipeline on a small Restaurants
// dataset with a perfect crowd: no blocking should trigger, and accuracy
// should be high.
func TestRunRestaurantsOracle(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.5))
	c := &crowd.Oracle{Truth: ds.Truth}
	cfg := Defaults()
	cfg.Seed = 7
	res, err := Run(ds, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("blocking triggered=%v cartesian=%d candidates=%d",
		res.Blocking.Triggered, res.Blocking.CartesianSize, len(res.Blocking.Candidates))
	t.Logf("true=%v estF1=%.1f estP=%.3f±%.3f estR=%.3f±%.3f",
		res.True, res.EstimatedF1,
		res.EstimatedPrecision.Point, res.EstimatedPrecision.Margin,
		res.EstimatedRecall.Point, res.EstimatedRecall.Margin)
	t.Logf("cost=$%.2f answers=%d pairs=%d iterations=%d stop=%q",
		res.Accounting.Cost, res.Accounting.Answers, res.Accounting.Pairs,
		res.Iterations, res.StopReason)
	for _, ph := range res.Phases {
		t.Logf("phase %-14s pairs=%-5d true=%v est=%v reduced=%d",
			ph.Name, ph.PairsLabeled, ph.True, ph.Estimated, ph.ReducedSetSize)
	}
	if res.Blocking.Triggered {
		t.Error("blocking should not trigger on a small dataset")
	}
	if res.True.F1 < 85 {
		t.Errorf("F1 = %.1f, want >= 85 with a perfect crowd", res.True.F1)
	}
	if res.Accounting.Pairs == 0 || res.Accounting.Cost <= 0 {
		t.Error("expected nonzero crowd usage")
	}
}

// TestRunCitationsBlocking runs the pipeline on a scaled Citations dataset
// sized so that blocking triggers, with a mildly noisy crowd.
func TestRunCitationsBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	ds := datagen.Generate(datagen.Scaled(datagen.CitationsPaper, 0.08))
	c := crowd.NewSimulated(ds.Truth, 0.05, 99)
	cfg := Defaults()
	cfg.Seed = 7
	cfg.Blocker.TB = 20000
	res, err := Run(ds, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("|A|=%d |B|=%d matches=%d cartesian=%d", ds.A.Len(), ds.B.Len(),
		ds.Truth.NumMatches(), res.Blocking.CartesianSize)
	t.Logf("blocking triggered=%v candidates=%d rules=%d(sel=%d)",
		res.Blocking.Triggered, len(res.Blocking.Candidates),
		res.Blocking.CandidateRuleCount, len(res.Blocking.Selected))
	t.Logf("true=%v estF1=%.1f cost=$%.2f pairs=%d iter=%d stop=%q",
		res.True, res.EstimatedF1, res.Accounting.Cost, res.Accounting.Pairs,
		res.Iterations, res.StopReason)
	for _, ph := range res.Phases {
		t.Logf("phase %-14s pairs=%-5d true=%v est=%v reduced=%d",
			ph.Name, ph.PairsLabeled, ph.True, ph.Estimated, ph.ReducedSetSize)
	}
	if !res.Blocking.Triggered {
		t.Error("blocking should trigger")
	}
	if res.True.F1 < 75 {
		t.Errorf("F1 = %.1f, want >= 75", res.True.F1)
	}
}

// funcCrowd adapts a function to the Crowd interface.
type funcCrowd func(p record.Pair) bool

func (f funcCrowd) Answer(p record.Pair) bool { return f(p) }

// TestRunBudgetMode verifies the run stops once the crowd spend reaches the
// budget and reports it.
func TestRunBudgetMode(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.4))
	c := &crowd.Oracle{Truth: ds.Truth}
	cfg := Defaults()
	cfg.Seed = 3
	cfg.Budget = 0.50 // 50 cents
	res, err := Run(ds, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The budget check runs between phases and inside active learning, so
	// overshoot is bounded by one voting escalation, not a whole phase.
	if res.Accounting.Cost > 1.0 {
		t.Errorf("cost $%.2f blew the $0.50 budget", res.Accounting.Cost)
	}
	if res.StopReason != "budget exhausted" {
		t.Errorf("stop reason = %q", res.StopReason)
	}
}

// TestRunSkipEstimator checks the blocker+matcher-only mode.
func TestRunSkipEstimator(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.4))
	cfg := Defaults()
	cfg.Seed = 5
	cfg.SkipEstimator = true
	res, err := Run(ds, &crowd.Oracle{Truth: ds.Truth}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
	for _, ph := range res.Phases {
		if ph.HasEst {
			t.Error("estimation phase present despite SkipEstimator")
		}
	}
	if len(res.Matches) == 0 {
		t.Error("no matches returned")
	}
}

// TestRunWithoutGroundTruth drives the engine as a real deployment would:
// no gold standard, labels from an external crowd function.
func TestRunWithoutGroundTruth(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.4))
	truth := ds.Truth
	ds.Truth = nil // the engine must not need it
	c := funcCrowd(func(p record.Pair) bool { return truth.Match(p) })
	cfg := Defaults()
	cfg.Seed = 7
	res, err := Run(ds, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasTrue {
		t.Error("true metrics reported without ground truth")
	}
	if res.EstimatedF1 <= 0 {
		t.Errorf("estimated F1 = %v", res.EstimatedF1)
	}
	got := metricsEval(res.Matches, truth)
	if got < 85 {
		t.Errorf("true F1 (computed externally) = %.1f", got)
	}
}

func metricsEval(pred []record.Pair, truth *record.GroundTruth) float64 {
	tp := truth.CountMatchesIn(pred)
	if len(pred) == 0 || truth.NumMatches() == 0 {
		return 0
	}
	p := float64(tp) / float64(len(pred))
	r := float64(tp) / float64(truth.NumMatches())
	if p+r == 0 {
		return 0
	}
	return 100 * 2 * p * r / (p + r)
}

// TestRunInvalidDataset checks validation is enforced.
func TestRunInvalidDataset(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.3))
	ds.Seeds = ds.Seeds[:2]
	if _, err := Run(ds, &crowd.Oracle{Truth: ds.Truth}, Defaults()); err == nil {
		t.Error("expected validation error")
	}
}

// TestRunDeterministic: same dataset, same seed, same result.
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	run := func() *Result {
		ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.4))
		cfg := Defaults()
		cfg.Seed = 11
		res, err := Run(ds, crowd.NewSimulated(ds.Truth, 0.05, 13), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.True.F1 != b.True.F1 || a.Accounting.Cost != b.Accounting.Cost ||
		a.Accounting.Pairs != b.Accounting.Pairs || len(a.Matches) != len(b.Matches) {
		t.Errorf("nondeterministic: F1 %v/%v cost %v/%v pairs %d/%d",
			a.True.F1, b.True.F1, a.Accounting.Cost, b.Accounting.Cost,
			a.Accounting.Pairs, b.Accounting.Pairs)
	}
}

// TestPhaseAccounting verifies the Table 4 bookkeeping invariants.
func TestPhaseAccounting(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.4))
	cfg := Defaults()
	cfg.Seed = 17
	res, err := Run(ds, &crowd.Oracle{Truth: ds.Truth}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ph := range res.Phases {
		if ph.PairsLabeled < 0 {
			t.Errorf("phase %s has negative pair count", ph.Name)
		}
		total += ph.PairsLabeled
	}
	if total > res.Accounting.Pairs {
		t.Errorf("phase pair sum %d exceeds total %d", total, res.Accounting.Pairs)
	}
	if res.Phases[0].Name != "Iteration 1" || !res.Phases[0].HasTrue {
		t.Errorf("first phase = %+v", res.Phases[0])
	}
	if len(res.IterationMatches) != res.Iterations {
		t.Errorf("IterationMatches = %d for %d iterations",
			len(res.IterationMatches), res.Iterations)
	}
	if len(res.ConfidenceTraces) != res.Iterations {
		t.Errorf("ConfidenceTraces = %d", len(res.ConfidenceTraces))
	}
}

// TestAllocateBudget checks the §10 split sums to the total.
func TestAllocateBudget(t *testing.T) {
	pb := AllocateBudget(100)
	if got := pb.Blocking + pb.Matching + pb.Estimation; got < 99.99 || got > 100.01 {
		t.Errorf("phase budgets sum to %v, want 100", got)
	}
	if pb.Matching < pb.Blocking || pb.Matching < pb.Estimation {
		t.Error("matching should get the largest share")
	}
}

// TestRunPhaseBudgets caps each stage and verifies the caps hold (within
// one voting escalation of slack per phase).
func TestRunPhaseBudgets(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.5))
	cfg := Defaults()
	cfg.Seed = 29
	cfg.PhaseBudgets = AllocateBudget(3.00)
	res, err := Run(ds, crowd.NewSimulated(ds.Truth, 0.05, 31), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Total spend bounded by the allocation plus bounded overshoot.
	if res.Accounting.Cost > 4.50 {
		t.Errorf("cost $%.2f blew the $3.00 allocation", res.Accounting.Cost)
	}
	if len(res.Matches) == 0 {
		t.Error("no matches under phase budgets")
	}
}

// TestListenerEvents checks the progress-event stream covers each phase.
func TestListenerEvents(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.3))
	cfg := Defaults()
	cfg.Seed = 41
	var phases []string
	cfg.Listener = func(e Event) { phases = append(phases, e.Phase) }
	if _, err := Run(ds, &crowd.Oracle{Truth: ds.Truth}, cfg); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range phases {
		seen[p] = true
	}
	for _, want := range []string{"blocking", "matching", "estimation"} {
		if !seen[want] {
			t.Errorf("no %q events (got %v)", want, phases)
		}
	}
}

// TestSummaryRendering checks the human-readable report contains the key
// facts.
func TestSummaryRendering(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.3))
	cfg := Defaults()
	cfg.Seed = 43
	res, err := Run(ds, &crowd.Oracle{Truth: ds.Truth}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"Corleone run", "matches:", "estimated:",
		"true:", "crowd:", "stopped:", "Iteration 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestCancel aborts a run via the Cancel channel and gets a partial result.
func TestCancel(t *testing.T) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.4))
	cfg := Defaults()
	cfg.Seed = 47
	ch := make(chan struct{})
	close(ch) // cancel immediately
	cfg.Cancel = ch
	res, err := Run(ds, &crowd.Oracle{Truth: ds.Truth}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != "canceled" {
		t.Errorf("stop reason = %q", res.StopReason)
	}
}
