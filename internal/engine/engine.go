// Package engine wires the four Corleone modules into the Figure 1 control
// loop: Blocker → { Matcher → Accuracy Estimator → Difficult Pairs'
// Locator } repeated until the estimated accuracy stops improving, the
// locator finds nothing left to zoom into, or the monetary budget runs out.
// Per-phase statistics are recorded in the shape of the paper's Table 4.
package engine

import (
	"fmt"
	"math/rand"

	"github.com/corleone-em/corleone/internal/active"

	"github.com/corleone-em/corleone/internal/blocker"
	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/estimator"
	"github.com/corleone-em/corleone/internal/feature"
	"github.com/corleone-em/corleone/internal/forest"
	"github.com/corleone-em/corleone/internal/locator"
	"github.com/corleone-em/corleone/internal/matcher"
	"github.com/corleone-em/corleone/internal/metrics"
	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/stats"
)

// Config controls a Corleone run.
type Config struct {
	Blocker   blocker.Config
	Matcher   matcher.Config
	Estimator estimator.Config
	Locator   locator.Config
	// PricePerQuestion is the payment per crowd answer (paper: $0.01 for
	// Restaurants and Citations, $0.02 for Products).
	PricePerQuestion float64
	// MaxIterations caps matching iterations (paper needs 1–2; default 3).
	MaxIterations int
	// Budget, when positive, stops the run once crowd cost reaches it
	// (the "$500 journalist" mode of §3).
	Budget float64
	// PhaseBudgets, when set, caps crowd spend per pipeline stage — the
	// §10 budget-allocation question ("given a monetary budget, how to
	// best allocate it among blocking, matching, and estimation?").
	// AllocateBudget provides the default split.
	PhaseBudgets PhaseBudgets
	// SkipEstimator runs Blocker + Matcher only (single shot, no
	// iteration) — one of the §3 alternative modes.
	SkipEstimator bool
	// Listener, when non-nil, receives progress events as the pipeline
	// advances — crowd runs take real time and money, and the user should
	// see both ticking.
	Listener func(Event)
	// Cancel, when non-nil, aborts the run as soon as the channel closes
	// (checked between crowd batches and phases, and by the crowd runner
	// before every individual question, so a cancel mid-batch stops
	// soliciting — and recording — answers immediately). The partial result
	// is returned with StopReason "canceled" — labels already paid for are
	// in the result, not lost.
	Cancel <-chan struct{}
	// Runner, when non-nil, is used instead of constructing a fresh runner
	// from the crowd argument — the resume path: a run service preloads it
	// with journaled labels (and replay batches) so settled questions are
	// never re-paid, and installs its journal hooks before the run starts.
	// PricePerQuestion is ignored in that case; the runner carries its own.
	Runner *crowd.Runner
	// Checkpoint, when non-nil, receives a durable-state snapshot at every
	// phase boundary (after blocking and after each iteration, estimation,
	// and reduction phase). A run service flushes its journal here.
	Checkpoint func(Checkpoint)
	// Seed drives all sampling.
	Seed int64
}

// Checkpoint is the phase-boundary snapshot handed to Config.Checkpoint:
// everything a journal needs to make the run resumable at this point.
type Checkpoint struct {
	// Phase is "blocking", "iteration", "estimation", or "reduction".
	Phase string
	// Iteration is the 1-based matching iteration (0 for blocking).
	Iteration int
	// Accounting is the crowd spend at the boundary.
	Accounting crowd.Accounting
	// Forest is the matcher trained this iteration (nil outside iteration
	// boundaries) and FeatureNames its feature contract, so the snapshot
	// can be persisted with forest.Save and re-applied later.
	Forest       *forest.Forest
	FeatureNames []string
}

// Event is one pipeline progress notification.
type Event struct {
	// Phase is "blocking", "matching", "estimation", or "reduction".
	Phase string
	// Detail is a human-readable progress line.
	Detail string
	// Cost and Pairs snapshot the crowd spend at emission time.
	Cost  float64
	Pairs int
}

// PhaseBudgets caps crowd spend per stage. Zero fields mean "no cap".
// Matching covers every matcher iteration plus difficult-pair location;
// Estimation covers every accuracy-estimation pass.
type PhaseBudgets struct {
	Blocking   float64
	Matching   float64
	Estimation float64
}

// AllocateBudget splits a total budget with the 25/45/30 heuristic:
// blocking labels are the cheapest per unit of benefit but saturate early;
// matching is the accuracy-critical stage; estimation needs enough labels
// that its margins mean something. The split was tuned on the synthetic
// datasets with simulated crowds.
func AllocateBudget(total float64) PhaseBudgets {
	return PhaseBudgets{
		Blocking:   0.25 * total,
		Matching:   0.45 * total,
		Estimation: 0.30 * total,
	}
}

// Defaults returns the paper's configuration.
func Defaults() Config {
	return Config{
		Blocker:          blocker.Defaults(),
		Matcher:          matcher.Defaults(),
		Estimator:        estimator.Defaults(),
		Locator:          locator.Defaults(),
		PricePerQuestion: 0.01,
		MaxIterations:    3,
		Seed:             1,
	}
}

// Phase names one row fragment of Table 4.
type Phase struct {
	// Name is "Iteration 1", "Estimation 1", "Reduction 1", ...
	Name string
	// PairsLabeled is the number of NEW distinct pairs the crowd labeled
	// during this phase (Table 4's "# Pairs").
	PairsLabeled int
	// True is the true accuracy of the cumulative matcher after an
	// Iteration phase (empty for other phases, or without ground truth).
	True metrics.PRF
	// HasTrue reports whether True is populated.
	HasTrue bool
	// Estimated is the estimator's output after an Estimation phase.
	Estimated metrics.PRF
	HasEst    bool
	// ReducedSetSize is |C'| after a Reduction phase.
	ReducedSetSize int
}

// Result is a complete Corleone run.
type Result struct {
	// Dataset is the dataset name.
	Dataset string
	// Blocking reports the Blocker's work.
	Blocking *blocker.Result
	// BlockingAccounting is the crowd spend snapshot right after blocking
	// (Table 3's Cost / # Pairs columns).
	BlockingAccounting crowd.Accounting
	// Matches is the final set of predicted match pairs.
	Matches []record.Pair
	// EstimatedPrecision / EstimatedRecall / EstimatedF1 are the final
	// crowd-based estimates returned to the user.
	EstimatedPrecision stats.Interval
	EstimatedRecall    stats.Interval
	EstimatedF1        float64
	// True is the gold-standard accuracy (populated when the dataset has
	// ground truth; Corleone itself never consults it).
	True    metrics.PRF
	HasTrue bool
	// Phases is the Table 4 trace.
	Phases []Phase
	// Iterations is the number of matching iterations executed.
	Iterations int
	// IterationMatches[i] is the cumulative predicted-match set after
	// iteration i+1 (for the §9.3 reduction-effectiveness analysis).
	IterationMatches [][]record.Pair
	// DifficultSets[i] is the difficult pair set C' produced by reduction
	// i+1 (empty when the locator stopped the run).
	DifficultSets [][]record.Pair
	// EstimatorRuns and LocatorRuns expose the per-iteration module
	// results for the §9.3 rule audit.
	EstimatorRuns []*estimator.Result
	LocatorRuns   []*locator.Result
	// ConfidenceTraces[i] is the matcher's active-learning confidence
	// series in iteration i+1 (Figure 3).
	ConfidenceTraces []active.Trace
	// Model is the iteration-1 matcher (trained over the full candidate
	// set) and FeatureNames its feature contract — together they let a
	// trained matcher be saved and re-applied to future data without
	// retraining (the paper's Example 3.1).
	Model        *forest.Forest
	FeatureNames []string
	// Accounting is the total crowd spend.
	Accounting crowd.Accounting
	// StopReason explains why the loop ended.
	StopReason string
}

// Run executes the full hands-off pipeline on the dataset using the given
// crowd. The dataset's ground truth, if present, is used only by simulated
// crowds and for reporting true accuracy.
func Run(ds *record.Dataset, c crowd.Crowd, cfg Config) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 3
	}
	if cfg.PricePerQuestion <= 0 {
		cfg.PricePerQuestion = 0.01
	}
	runner := cfg.Runner
	if runner == nil {
		runner = crowd.NewRunner(c, cfg.PricePerQuestion)
	}
	if runner.Cancel == nil {
		// Propagate cancellation below the batch level: the runner refuses
		// to solicit (or record) answers once the channel closes, so a
		// canceled crowd adapter's fabricated answers never enter the cache.
		runner.Cancel = cfg.Cancel
	}
	runner.SeedLabels(ds.Seeds)
	ex := feature.NewExtractor(ds)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Dataset: ds.Name}
	emit := func(phase, detail string) {
		if cfg.Listener == nil {
			return
		}
		st := runner.Stats()
		cfg.Listener(Event{Phase: phase, Detail: detail, Cost: st.Cost, Pairs: st.Pairs})
	}
	checkpoint := func(phase string, iter int, f *forest.Forest) {
		if cfg.Checkpoint == nil {
			return
		}
		cp := Checkpoint{Phase: phase, Iteration: iter,
			Accounting: runner.Stats(), Forest: f}
		if f != nil {
			cp.FeatureNames = ex.Names()
		}
		cfg.Checkpoint(cp)
	}

	canceled := func() bool {
		select {
		case <-cfg.Cancel:
			return true
		default:
			return false
		}
	}
	overBudget := func() bool {
		if cfg.Cancel != nil && canceled() {
			return true
		}
		return cfg.Budget > 0 && runner.Stats().Cost >= cfg.Budget
	}
	// Per-phase spend tracking for PhaseBudgets: bucketStart is the cost
	// when the current phase (re-)entered its bucket; the accumulators
	// carry spend from earlier visits (matching and estimation recur).
	var bucketStart, matchSpent, estSpent float64
	blockingStop := func() bool {
		if overBudget() {
			return true
		}
		return cfg.PhaseBudgets.Blocking > 0 &&
			runner.Stats().Cost >= cfg.PhaseBudgets.Blocking
	}
	matchingStop := func() bool {
		if overBudget() {
			return true
		}
		return cfg.PhaseBudgets.Matching > 0 &&
			matchSpent+(runner.Stats().Cost-bucketStart) >= cfg.PhaseBudgets.Matching
	}
	estimationStop := func() bool {
		if overBudget() {
			return true
		}
		return cfg.PhaseBudgets.Estimation > 0 &&
			estSpent+(runner.Stats().Cost-bucketStart) >= cfg.PhaseBudgets.Estimation
	}
	// Propagate the budget checks into every crowd-spending loop.
	cfg.Blocker.Active.StopEarly = blockingStop
	cfg.Blocker.RuleEval.StopEarly = blockingStop
	cfg.Matcher.Active.StopEarly = matchingStop
	cfg.Estimator.StopEarly = estimationStop
	cfg.Locator.RuleEval.StopEarly = matchingStop

	// ---- Blocker (§4) ----
	emit("blocking", fmt.Sprintf("scanning %d pairs (t_B = %d)", ds.CartesianSize(), cfg.Blocker.TB))
	bcfg := cfg.Blocker
	bcfg.Seed = cfg.Seed
	// Consume the umbrella set as a stream: the blocker's planner emits
	// bounded chunks in deterministic order, and the engine materializes C
	// exactly once here (the matcher needs random access to it).
	var C []record.Pair
	bcfg.Sink = func(chunk []record.Pair) { C = append(C, chunk...) }
	blk, err := blocker.Run(ds, ex, runner, bcfg)
	if err != nil {
		return nil, err
	}
	// Re-attach the collected umbrella set so Result.Blocking.Candidates
	// keeps its documented meaning for reports, experiments, and tests.
	blk.Candidates = C
	res.Blocking = blk
	res.BlockingAccounting = runner.Stats()
	if blk.Triggered {
		emit("blocking", fmt.Sprintf("%d rules applied, umbrella set %d pairs",
			len(blk.Selected), len(blk.Candidates)))
	} else {
		emit("blocking", "skipped (Cartesian product below t_B)")
	}
	checkpoint("blocking", 0, nil)
	X := ex.Vectors(C)

	// All labeled examples accumulated so far, deduplicated by pair, with
	// their vectors (§5.1 trains on "all labeled examples available").
	vecOf := make(map[record.Pair][]float64, len(C))
	for i, p := range C {
		vecOf[p] = X[i]
	}
	lookupVec := func(p record.Pair) []float64 {
		if v, ok := vecOf[p]; ok {
			return v
		}
		v := ex.Vector(p)
		vecOf[p] = v
		return v
	}
	var training []record.Labeled
	seen := record.NewPairSet()
	addTraining := func(ls []record.Labeled) {
		for _, l := range ls {
			if seen.Has(l.Pair) {
				continue
			}
			seen.Add(l.Pair)
			training = append(training, l)
		}
	}
	addTraining(ds.Seeds)
	addTraining(blk.Training)

	// Combined predictions over C: later iterations overwrite only their
	// difficult subset (§7 step 3 routes each pair to the matcher trained
	// for it).
	finalPred := make([]bool, len(C))
	cur := make([]int, len(C)) // indices into C for the current iteration's set
	for i := range cur {
		cur[i] = i
	}

	bestEstF1 := -1.0
	var bestMatches []record.Pair
	pairsBefore := func() int { return runner.Stats().Pairs }

	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		if cfg.Cancel != nil && canceled() {
			res.StopReason = "canceled"
			break
		}
		if overBudget() {
			res.StopReason = "budget exhausted"
			break
		}
		// ---- Matcher (§5) ----
		start := pairsBefore()
		subPairs := make([]record.Pair, len(cur))
		subX := make([][]float64, len(cur))
		for i, ci := range cur {
			subPairs[i] = C[ci]
			subX[i] = X[ci]
		}
		initX := make([][]float64, len(training))
		for i, l := range training {
			initX[i] = lookupVec(l.Pair)
		}
		emit("matching", fmt.Sprintf("iteration %d over %d candidates", iter, len(cur)))
		mcfg := cfg.Matcher
		mcfg.Active.Seed = cfg.Seed + int64(iter)*104729
		bucketStart = runner.Stats().Cost
		m, err := matcher.Run(runner, subPairs, subX, training, initX, mcfg)
		matchSpent += runner.Stats().Cost - bucketStart
		if err != nil {
			return nil, err
		}
		addTraining(m.Training)
		if iter == 1 {
			res.Model = m.Forest
			res.FeatureNames = ex.Names()
		}
		for i, ci := range cur {
			finalPred[ci] = m.Predictions[i]
		}
		res.Iterations = iter
		res.IterationMatches = append(res.IterationMatches, collect(C, finalPred))
		res.ConfidenceTraces = append(res.ConfidenceTraces, m.Trace)

		iterPhase := Phase{
			Name:         fmt.Sprintf("Iteration %d", iter),
			PairsLabeled: runner.Stats().Pairs - start,
		}
		if ds.Truth != nil {
			iterPhase.True = metrics.Evaluate(collect(C, finalPred), ds.Truth)
			iterPhase.HasTrue = true
		}
		res.Phases = append(res.Phases, iterPhase)
		emit("matching", fmt.Sprintf("iteration %d done: %d predicted matches (AL stopped: %s)",
			iter, m.PositiveCount, m.Trace.Reason))
		checkpoint("iteration", iter, m.Forest)

		if cfg.SkipEstimator {
			res.StopReason = "estimator skipped"
			bestMatches = collect(C, finalPred)
			break
		}
		if overBudget() {
			res.StopReason = "budget exhausted"
			bestMatches = collect(C, finalPred)
			break
		}

		// ---- Accuracy Estimator (§6) ----
		start = pairsBefore()
		ecfg := cfg.Estimator
		ecfg.Seed = cfg.Seed + int64(iter)*7
		bucketStart = runner.Stats().Cost
		est := estimator.Estimate(rng, runner, m.Forest, C, X, finalPred, training, ecfg)
		estSpent += runner.Stats().Cost - bucketStart
		res.EstimatorRuns = append(res.EstimatorRuns, est)
		emit("estimation", fmt.Sprintf("P=%.1f%%±%.1f R=%.1f%%±%.1f (%d reduction rules)",
			100*est.Precision.Point, 100*est.Precision.Margin,
			100*est.Recall.Point, 100*est.Recall.Margin, len(est.RulesApplied)))
		res.EstimatedPrecision = est.Precision
		res.EstimatedRecall = est.Recall
		res.EstimatedF1 = est.F1
		res.Phases = append(res.Phases, Phase{
			Name:         fmt.Sprintf("Estimation %d", iter),
			PairsLabeled: runner.Stats().Pairs - start,
			Estimated: metrics.PRF{P: 100 * est.Precision.Point,
				R: 100 * est.Recall.Point, F1: est.F1},
			HasEst: true,
		})
		checkpoint("estimation", iter, nil)

		// Keep the best matching seen so far (by estimated F1); stop when
		// the estimate no longer improves (§6 intro, §7).
		if est.F1 > bestEstF1 {
			bestEstF1 = est.F1
			bestMatches = collect(C, finalPred)
		} else {
			res.StopReason = "estimated accuracy did not improve"
			break
		}
		if iter == cfg.MaxIterations {
			res.StopReason = "max iterations"
			break
		}
		if overBudget() {
			res.StopReason = "budget exhausted"
			break
		}

		// ---- Difficult Pairs' Locator (§7) ----
		start = pairsBefore()
		lcfg := cfg.Locator
		lcfg.Seed = cfg.Seed + int64(iter)*13
		bucketStart = runner.Stats().Cost
		loc := locator.Locate(rng, runner, m.Forest, subPairs, subX, training, lcfg)
		matchSpent += runner.Stats().Cost - bucketStart
		res.LocatorRuns = append(res.LocatorRuns, loc)
		next := make([]int, len(loc.DifficultIdx))
		diff := make([]record.Pair, len(loc.DifficultIdx))
		for i, di := range loc.DifficultIdx {
			next[i] = cur[di]
			diff[i] = C[cur[di]]
		}
		res.DifficultSets = append(res.DifficultSets, diff)
		emit("reduction", fmt.Sprintf("%d difficult pairs located (proceed: %v)",
			len(diff), loc.Proceed))
		res.Phases = append(res.Phases, Phase{
			Name:           fmt.Sprintf("Reduction %d", iter),
			PairsLabeled:   runner.Stats().Pairs - start,
			ReducedSetSize: len(next),
		})
		checkpoint("reduction", iter, nil)
		if !loc.Proceed {
			res.StopReason = "locator: " + loc.Reason
			break
		}
		cur = next
	}

	if cfg.Cancel != nil && canceled() {
		res.StopReason = "canceled"
	}
	if bestMatches == nil {
		bestMatches = collect(C, finalPred)
	}
	res.Matches = bestMatches
	if ds.Truth != nil {
		res.True = metrics.Evaluate(res.Matches, ds.Truth)
		res.HasTrue = true
	}
	res.Accounting = runner.Stats()
	if res.StopReason == "" {
		res.StopReason = "completed"
	}
	return res, nil
}

func collect(pairs []record.Pair, pred []bool) []record.Pair {
	var out []record.Pair
	for i, p := range pred {
		if p {
			out = append(out, pairs[i])
		}
	}
	return out
}
