package crowd

import "math"

// ResponseModel captures §10's money-time tradeoff: paying more per
// question attracts workers faster, with diminishing returns. The model is
// a standard crowd-market abstraction — worker arrivals follow a rate that
// grows as a power of the pay rate, and each worker processes HITs at a
// fixed service rate — calibrated here to the AMT folklore the paper
// alludes to (a 1-cent EM task draws a trickle; a 5-cent one a crowd).
type ResponseModel struct {
	// BaseArrivalPerHour is the worker arrival rate at 1 cent/question.
	BaseArrivalPerHour float64
	// PayElasticity is the exponent on pay: rate = base * price^elasticity.
	// Empirical crowd studies put it below 1 (diminishing returns).
	PayElasticity float64
	// HITMinutes is one worker's service time for a 10-question HIT.
	HITMinutes float64
}

// DefaultResponseModel returns a conservative AMT-like calibration:
// 12 workers/hour at 1 cent, elasticity 0.7, 2 minutes per HIT.
func DefaultResponseModel() ResponseModel {
	return ResponseModel{BaseArrivalPerHour: 12, PayElasticity: 0.7, HITMinutes: 2}
}

// WorkersPerHour returns the expected arrival rate at the given price.
func (m ResponseModel) WorkersPerHour(priceCents float64) float64 {
	if priceCents <= 0 {
		return 0
	}
	return m.BaseArrivalPerHour * math.Pow(priceCents, m.PayElasticity)
}

// CompletionHours estimates the wall-clock time to collect votesPerQ
// answers for each of n questions at the given price. Work is bounded by
// worker throughput: each arriving worker clears one 10-question HIT per
// service period, and a worker may answer each question at most once, so
// at least votesPerQ distinct workers must arrive.
func (m ResponseModel) CompletionHours(n, votesPerQ int, priceCents float64) float64 {
	if n <= 0 || votesPerQ <= 0 {
		return 0
	}
	rate := m.WorkersPerHour(priceCents)
	if rate <= 0 {
		return math.Inf(1)
	}
	hits := float64((n+HITSize-1)/HITSize) * float64(votesPerQ)
	serviceHours := m.HITMinutes / 60
	// Throughput-limited: arriving workers process HITs in parallel.
	throughput := hits / rate * 1 // one HIT per arrival
	// Distinct-worker floor: the votesPerQ-th vote cannot arrive before
	// votesPerQ workers have.
	floor := float64(votesPerQ) / rate
	return math.Max(throughput, floor) + serviceHours
}

// CostDollars is the crowd payment for the same batch.
func (m ResponseModel) CostDollars(n, votesPerQ int, priceCents float64) float64 {
	return float64(n) * float64(votesPerQ) * priceCents / 100
}

// CheapestWithinDeadline returns the lowest integer price (in cents) that
// completes n questions with votesPerQ votes within deadlineHours and
// within budgetDollars. ok is false when no price in [1, 100] satisfies
// both constraints.
func (m ResponseModel) CheapestWithinDeadline(n, votesPerQ int,
	budgetDollars, deadlineHours float64) (priceCents int, ok bool) {

	for price := 1; price <= 100; price++ {
		if m.CompletionHours(n, votesPerQ, float64(price)) > deadlineHours {
			continue
		}
		if m.CostDollars(n, votesPerQ, float64(price)) > budgetDollars {
			return 0, false // faster is only more expensive
		}
		return price, true
	}
	return 0, false
}
