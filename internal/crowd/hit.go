package crowd

import (
	"fmt"
	"strings"

	"github.com/corleone-em/corleone/internal/record"
)

// Question is one crowd question: a tuple pair rendered side by side with
// the user's matching instruction (the paper's Figure 4).
type Question struct {
	Pair        record.Pair
	Instruction string
}

// RenderQuestion renders pair p of the dataset as the side-by-side table a
// worker would see on AMT, in plain text. Yes / No / Not sure are the answer
// options in the paper's UI; "Not sure" answers are re-solicited, so the
// Crowd interface models only Yes/No.
func RenderQuestion(ds *record.Dataset, p record.Pair) string {
	var b strings.Builder
	b.WriteString("Do these records match?\n")
	if ds.Instruction != "" {
		fmt.Fprintf(&b, "Instruction: %s\n", ds.Instruction)
	}
	wName := len("Attribute")
	w1 := len("Record 1")
	w2 := len("Record 2")
	rowA := ds.A.Rows[p.A]
	rowB := ds.B.Rows[p.B]
	for i, attr := range ds.A.Schema {
		if len(attr.Name) > wName {
			wName = len(attr.Name)
		}
		if len(rowA[i]) > w1 {
			w1 = len(rowA[i])
		}
		if len(rowB[i]) > w2 {
			w2 = len(rowB[i])
		}
	}
	sep := "+" + strings.Repeat("-", wName+2) + "+" + strings.Repeat("-", w1+2) + "+" + strings.Repeat("-", w2+2) + "+\n"
	row := func(c0, c1, c2 string) {
		fmt.Fprintf(&b, "| %-*s | %-*s | %-*s |\n", wName, c0, w1, c1, w2, c2)
	}
	b.WriteString(sep)
	row("Attribute", "Record 1", "Record 2")
	b.WriteString(sep)
	for i, attr := range ds.A.Schema {
		row(attr.Name, rowA[i], rowB[i])
	}
	b.WriteString(sep)
	b.WriteString("( ) Yes   ( ) No   ( ) Not sure\n")
	return b.String()
}

// RenderHIT renders up to HITSize questions as one Human Intelligence Task.
func RenderHIT(ds *record.Dataset, pairs []record.Pair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== HIT (%d questions) ===\n", len(pairs))
	for i, p := range pairs {
		if i >= HITSize {
			break
		}
		fmt.Fprintf(&b, "\nQuestion %d:\n%s", i+1, RenderQuestion(ds, p))
	}
	return b.String()
}
