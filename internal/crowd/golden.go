package crowd

import (
	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/stats"
)

// GoldenGate implements the golden-questions quality scheme §8.2 cites:
// known-answer questions are mixed into the work stream, each worker's
// accuracy on them is tracked, and workers below a threshold are banned —
// their future answers are discarded and re-solicited from the rest of the
// panel. This is the screening mechanism crowd platforms use against
// spammers; Corleone's qualification requirements ("95% approval rate")
// are its coarse-grained cousin.
type GoldenGate struct {
	panel *Panel
	// gold is the set of screening questions with their true answers.
	gold []record.Labeled
	// MinAccuracy is the pass threshold on golden questions.
	MinAccuracy float64
	// Probe is how many golden questions each new worker must answer.
	Probe int

	scores map[int]*goldenScore
	banned map[int]bool
}

type goldenScore struct {
	asked, correct int
}

// NewGoldenGate wraps a panel with golden-question screening. gold must be
// labeled with true answers (the user's seed examples are a natural
// source, as the paper notes EM tasks on AMT ship with them).
func NewGoldenGate(panel *Panel, gold []record.Labeled, minAccuracy float64, probe int) *GoldenGate {
	if probe <= 0 {
		probe = 4
	}
	if minAccuracy <= 0 {
		minAccuracy = 0.75
	}
	return &GoldenGate{
		panel:       panel,
		gold:        gold,
		MinAccuracy: minAccuracy,
		Probe:       probe,
		scores:      map[int]*goldenScore{},
		banned:      map[int]bool{},
	}
}

// screen runs the golden probe for worker w if not yet screened, and
// returns whether the worker is allowed to contribute.
func (g *GoldenGate) screen(w int) bool {
	if g.banned[w] {
		return false
	}
	sc := g.scores[w]
	if sc != nil {
		return true // already screened and passed
	}
	sc = &goldenScore{}
	g.scores[w] = sc
	for i := 0; i < g.Probe && i < len(g.gold); i++ {
		q := g.gold[i]
		// The worker answers the golden question; the panel models the
		// same worker answering by reusing its spec deterministically
		// through AnswerAs retries until w answers. For simulation
		// fidelity we instead query the worker's spec directly.
		ans := g.panel.answerByWorker(w, q.Pair)
		sc.asked++
		if ans == q.Match {
			sc.correct++
		}
	}
	if sc.asked > 0 && float64(sc.correct)/float64(sc.asked) < g.MinAccuracy {
		g.banned[w] = true
		return false
	}
	return true
}

// Answer implements Crowd: solicit answers, discarding those from workers
// who fail (or have failed) golden screening.
func (g *GoldenGate) Answer(p record.Pair) bool {
	for attempt := 0; attempt < 100; attempt++ {
		a, w := g.panel.AnswerAs(p)
		if g.screen(w) {
			return a
		}
	}
	// Pathological panel (everyone banned): fall through unscreened.
	a, _ := g.panel.AnswerAs(p)
	return a
}

// Banned returns the ids of workers the gate has rejected.
func (g *GoldenGate) Banned() []int {
	var out []int
	for w := range g.banned {
		out = append(out, w)
	}
	intsSort(out)
	return out
}

// GoldenQuestionsSpent counts golden answers solicited for screening; they
// cost money like any other answer.
func (g *GoldenGate) GoldenQuestionsSpent() int {
	n := 0
	for _, sc := range g.scores {
		n += sc.asked
	}
	return n
}

func intsSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// answerByWorker has the specific worker w answer the pair (simulation
// hook used by golden screening).
func (p *Panel) answerByWorker(w int, pair record.Pair) bool {
	truth := p.Truth.Match(pair)
	p.mu.Lock()
	defer p.mu.Unlock()
	spec := p.workers[w]
	switch spec.Kind {
	case Spammer:
		return p.rng.Float64() < 0.5
	case Adversarial:
		if p.rng.Float64() < spec.Accuracy {
			return !truth
		}
		return truth
	default:
		if p.rng.Float64() < spec.Accuracy {
			return truth
		}
		return !truth
	}
}

// EffectiveErrorRate estimates the answer error rate of a crowd by asking
// n questions with known answers — the "crowd profiling" step §10 proposes
// for guiding later stages. Returns the observed error fraction with its
// §4.2 margin.
func EffectiveErrorRate(c Crowd, gold []record.Labeled, n int, conf float64) (float64, float64) {
	if len(gold) == 0 || n <= 0 {
		return 0, 1
	}
	wrong := 0
	for i := 0; i < n; i++ {
		q := gold[i%len(gold)]
		if c.Answer(q.Pair) != q.Match {
			wrong++
		}
	}
	rate := float64(wrong) / float64(n)
	return rate, stats.ProportionMargin(rate, n, 0, conf)
}
