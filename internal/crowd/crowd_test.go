package crowd

import (
	"strings"
	"testing"

	"github.com/corleone-em/corleone/internal/record"
)

func truth2() *record.GroundTruth {
	return record.NewGroundTruth([]record.Pair{record.P(0, 0), record.P(1, 1)})
}

// scripted is a crowd that returns a fixed answer sequence, then repeats
// the last answer.
type scripted struct {
	answers []bool
	i       int
}

func (s *scripted) Answer(record.Pair) bool {
	if s.i < len(s.answers) {
		a := s.answers[s.i]
		s.i++
		return a
	}
	return s.answers[len(s.answers)-1]
}

// cancelingCrowd mimics platform.RemoteCrowd under cancellation: after a
// set number of genuine answers, it closes the cancel channel mid-answer
// and returns a fabricated false — the shape a marketplace adapter
// produces when told to stop polling. Once canceled, every answer is
// fabricated.
type cancelingCrowd struct {
	truth  *record.GroundTruth
	cancel chan struct{}
	after  int
	calls  int
}

func (c *cancelingCrowd) Answer(p record.Pair) bool {
	c.calls++
	select {
	case <-c.cancel:
		return false
	default:
	}
	if c.calls >= c.after {
		close(c.cancel)
		return false
	}
	return c.truth.Match(p)
}

// TestCancelDiscardsFabricatedVotes proves a canceled runner records
// nothing it did not genuinely pay for: the fabricated answer a canceled
// crowd adapter returns is discarded, the interrupted entry stays
// unsettled, and no further questions are solicited.
func TestCancelDiscardsFabricatedVotes(t *testing.T) {
	c := &cancelingCrowd{truth: truth2(), cancel: make(chan struct{}), after: 3}
	r := NewRunner(c, 0.01)
	r.Cancel = c.cancel

	// Two genuine answers settle the first pair before cancellation.
	if !r.Label(record.P(0, 0), Policy21) {
		t.Fatal("pre-cancel label wrong")
	}
	if st := r.Stats(); st.Answers != 2 || st.Cost != 0.02 {
		t.Fatalf("pre-cancel accounting %+v, want 2 answers at $0.02", st)
	}

	// The third solicit triggers cancellation mid-answer; its fabricated
	// false must not be recorded as a vote.
	r.Label(record.P(0, 1), Policy21)
	if st := r.Stats(); st.Answers != 2 || st.Cost != 0.02 {
		t.Errorf("fabricated answer recorded: %+v", st)
	}
	if _, ok := r.Cached(record.P(0, 1), Policy21); ok {
		t.Error("interrupted entry served as settled")
	}

	// Post-cancel labeling never contacts the crowd again.
	calls := c.calls
	r.Label(record.P(1, 1), PolicyHybrid)
	if c.calls != calls {
		t.Errorf("canceled runner solicited %d more answers", c.calls-calls)
	}
	if st := r.Stats(); st.Answers != 2 {
		t.Errorf("post-cancel accounting %+v, want 2 answers", st)
	}

	// The settled pre-cancel label still serves, and nothing half-voted
	// leaks into the reusable label set.
	if lbl, ok := r.Cached(record.P(0, 0), Policy21); !ok || !lbl {
		t.Error("settled pre-cancel label lost")
	}
	for _, l := range r.AllLabeled() {
		if l.Pair == (record.P(0, 1)) {
			t.Error("unsettled entry in AllLabeled")
		}
	}
}

func TestOracle(t *testing.T) {
	o := &Oracle{Truth: truth2()}
	if !o.Answer(record.P(0, 0)) || o.Answer(record.P(0, 1)) {
		t.Error("oracle answers wrong")
	}
}

func TestSimulatedErrorRate(t *testing.T) {
	s := NewSimulated(truth2(), 0.3, 1)
	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Answer(record.P(0, 0)) != true {
			wrong++
		}
	}
	got := float64(wrong) / n
	if got < 0.27 || got > 0.33 {
		t.Errorf("error rate %v, want ~0.3", got)
	}
}

func TestSimulatedZeroError(t *testing.T) {
	s := NewSimulated(truth2(), 0, 1)
	for i := 0; i < 100; i++ {
		if !s.Answer(record.P(1, 1)) {
			t.Fatal("zero-error crowd answered wrong")
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Policy21.String() != "2+1" || PolicyStrong.String() != "strong" ||
		PolicyHybrid.String() != "hybrid" || Policy(9).String() != "unknown" {
		t.Error("Policy.String wrong")
	}
}

func TestLabel21AgreementUsesTwoAnswers(t *testing.T) {
	r := NewRunner(&scripted{answers: []bool{false, false}}, 0.01)
	if got := r.Label(record.P(0, 1), Policy21); got {
		t.Error("label should be negative")
	}
	st := r.Stats()
	if st.Answers != 2 {
		t.Errorf("answers = %d, want 2", st.Answers)
	}
	if st.Cost != 0.02 {
		t.Errorf("cost = %v, want 0.02", st.Cost)
	}
	if st.Pairs != 1 {
		t.Errorf("pairs = %d, want 1", st.Pairs)
	}
}

func TestLabel21DisagreementSolicitsThird(t *testing.T) {
	r := NewRunner(&scripted{answers: []bool{true, false, false}}, 0.01)
	if got := r.Label(record.P(0, 1), Policy21); got {
		t.Error("majority is negative")
	}
	if r.Stats().Answers != 3 {
		t.Errorf("answers = %d, want 3", r.Stats().Answers)
	}
}

func TestHybridEscalatesPositives(t *testing.T) {
	// Two positive answers under hybrid must escalate to strong majority:
	// lead must reach 3, so a third positive answer is needed.
	r := NewRunner(&scripted{answers: []bool{true, true, true}}, 0.01)
	if got := r.Label(record.P(0, 0), PolicyHybrid); !got {
		t.Error("label should be positive")
	}
	if r.Stats().Answers != 3 {
		t.Errorf("answers = %d, want 3 (strong majority needs lead 3)", r.Stats().Answers)
	}
}

func TestHybridNegativeStaysCheap(t *testing.T) {
	r := NewRunner(&scripted{answers: []bool{false, false}}, 0.01)
	if got := r.Label(record.P(0, 1), PolicyHybrid); got {
		t.Error("label should be negative")
	}
	if r.Stats().Answers != 2 {
		t.Errorf("answers = %d, want 2 (negatives don't escalate)", r.Stats().Answers)
	}
}

func TestStrongMajoritySevenAnswerCap(t *testing.T) {
	// Alternating answers never reach lead 3; must stop at 7 and take the
	// majority (4 positive of 7 here).
	r := NewRunner(&scripted{answers: []bool{true, false, true, false, true, false, true}}, 0.01)
	got := r.Label(record.P(0, 0), PolicyStrong)
	if !got {
		t.Error("majority of 7 is positive")
	}
	if r.Stats().Answers != 7 {
		t.Errorf("answers = %d, want 7", r.Stats().Answers)
	}
}

func TestStrongMajorityPaperExamples(t *testing.T) {
	// §8.2: "4 positive and 1 negative answers would return a positive
	// label" — lead 3 reached at 5 answers.
	r := NewRunner(&scripted{answers: []bool{true, false, true, true, true}}, 0.01)
	if got := r.Label(record.P(0, 0), PolicyStrong); !got {
		t.Error("want positive")
	}
	if r.Stats().Answers != 5 {
		t.Errorf("answers = %d, want 5", r.Stats().Answers)
	}
}

func TestCacheReuse(t *testing.T) {
	r := NewRunner(&scripted{answers: []bool{false, false}}, 0.01)
	p := record.P(0, 1)
	r.Label(p, Policy21)
	n := r.Stats().Answers
	r.Label(p, Policy21) // cached
	if r.Stats().Answers != n {
		t.Error("cache miss on second identical request")
	}
	if r.Stats().Pairs != 1 {
		t.Errorf("pairs = %d, want 1", r.Stats().Pairs)
	}
}

func TestCacheUpgradeToStrong(t *testing.T) {
	// A positive 2+1... under 2+1 a positive label settles at Policy21;
	// a later strong request must top up answers, reusing the first two.
	r := NewRunner(&scripted{answers: []bool{true, true, true}}, 0.01)
	p := record.P(0, 0)
	if got := r.Label(p, Policy21); !got {
		t.Fatal("want positive")
	}
	if r.Stats().Answers != 2 {
		t.Fatalf("answers = %d, want 2", r.Stats().Answers)
	}
	if got := r.Label(p, PolicyStrong); !got {
		t.Error("upgraded label should stay positive")
	}
	if r.Stats().Answers != 3 {
		t.Errorf("answers after upgrade = %d, want 3 (one top-up)", r.Stats().Answers)
	}
}

func TestSeedLabelsNeverHitCrowd(t *testing.T) {
	r := NewRunner(&scripted{answers: []bool{false}}, 0.01)
	p := record.P(0, 0)
	r.SeedLabels([]record.Labeled{{Pair: p, Match: true}})
	if got := r.Label(p, PolicyStrong); !got {
		t.Error("seed label should win")
	}
	if r.Stats().Answers != 0 {
		t.Error("seed labels must not solicit answers")
	}
}

func TestCachedQuery(t *testing.T) {
	r := NewRunner(&scripted{answers: []bool{false, false}}, 0.01)
	p := record.P(0, 1)
	if _, ok := r.Cached(p, Policy21); ok {
		t.Error("uncached pair reported cached")
	}
	r.Label(p, Policy21)
	if lbl, ok := r.Cached(p, Policy21); !ok || lbl {
		t.Error("cached negative not returned")
	}
	// A negative 2+1 label satisfies hybrid but not strong.
	if _, ok := r.Cached(p, PolicyHybrid); !ok {
		t.Error("negative 2+1 should satisfy hybrid")
	}
	if _, ok := r.Cached(p, PolicyStrong); ok {
		t.Error("2+1 label must not satisfy strong")
	}
}

func TestLabelAll(t *testing.T) {
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	pairs := []record.Pair{record.P(0, 0), record.P(0, 1), record.P(1, 1)}
	got := r.LabelAll(pairs, Policy21)
	want := []bool{true, false, true}
	for i := range pairs {
		if got[i].Pair != pairs[i] || got[i].Match != want[i] {
			t.Errorf("LabelAll[%d] = %+v", i, got[i])
		}
	}
}

func TestAllLabeledSortedAndComplete(t *testing.T) {
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	r.SeedLabels([]record.Labeled{{Pair: record.P(5, 5), Match: false}})
	r.Label(record.P(1, 1), Policy21)
	r.Label(record.P(0, 0), Policy21)
	got := r.AllLabeled()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Pair.Less(got[i].Pair) {
			t.Error("AllLabeled not sorted")
		}
	}
}

func TestLabelTrainingBatchFreshHITs(t *testing.T) {
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	var pairs []record.Pair
	for b := 0; b < 20; b++ {
		pairs = append(pairs, record.P(0, b+2)) // all negative, uncached
	}
	got := r.LabelTrainingBatch(pairs, Policy21)
	if len(got) != 20 {
		t.Errorf("labeled %d, want 20 (two full HITs)", len(got))
	}
	if r.Stats().HITs != 2 {
		t.Errorf("HITs = %d, want 2", r.Stats().HITs)
	}
}

func TestLabelTrainingBatchSmallCache(t *testing.T) {
	// k <= 10 cached: one HIT of 10 fresh examples + the k cached returned.
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	var pairs []record.Pair
	for b := 0; b < 20; b++ {
		pairs = append(pairs, record.P(0, b+2))
	}
	for _, p := range pairs[:5] {
		r.Label(p, Policy21)
	}
	got := r.LabelTrainingBatch(pairs, Policy21)
	if len(got) != 15 {
		t.Errorf("returned %d, want 15 (5 cached + 10 fresh HIT)", len(got))
	}
}

func TestLabelTrainingBatchLargeCache(t *testing.T) {
	// k > 10 cached: return only the cached ones, ask nothing new.
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	var pairs []record.Pair
	for b := 0; b < 20; b++ {
		pairs = append(pairs, record.P(0, b+2))
	}
	for _, p := range pairs[:12] {
		r.Label(p, Policy21)
	}
	before := r.Stats().Answers
	got := r.LabelTrainingBatch(pairs, Policy21)
	if len(got) != 12 {
		t.Errorf("returned %d, want 12 cached", len(got))
	}
	if r.Stats().Answers != before {
		t.Error("large-cache batch must not solicit new answers")
	}
}

func TestRenderQuestion(t *testing.T) {
	schema := record.Schema{{Name: "name", Type: record.AttrString}}
	a := record.NewTable("a", schema)
	b := record.NewTable("b", schema)
	a.Append(record.Tuple{"kingston hyperx 4gb"})
	b.Append(record.Tuple{"kingston hyperx 12gb"})
	ds := &record.Dataset{Name: "t", A: a, B: b, Instruction: "match products"}
	q := RenderQuestion(ds, record.P(0, 0))
	for _, want := range []string{"match products", "kingston hyperx 4gb",
		"kingston hyperx 12gb", "Yes", "No", "Not sure", "name"} {
		if !strings.Contains(q, want) {
			t.Errorf("question missing %q:\n%s", want, q)
		}
	}
}

func TestRenderHITCapsQuestions(t *testing.T) {
	schema := record.Schema{{Name: "n", Type: record.AttrString}}
	a := record.NewTable("a", schema)
	b := record.NewTable("b", schema)
	for i := 0; i < 15; i++ {
		a.Append(record.Tuple{"x"})
		b.Append(record.Tuple{"y"})
	}
	ds := &record.Dataset{Name: "t", A: a, B: b}
	var pairs []record.Pair
	for i := 0; i < 15; i++ {
		pairs = append(pairs, record.P(i, i))
	}
	h := RenderHIT(ds, pairs)
	if strings.Contains(h, "Question 11") {
		t.Error("HIT should cap at 10 questions")
	}
	if !strings.Contains(h, "Question 10") {
		t.Error("HIT should include 10 questions")
	}
}

func TestResponseModelMonotonic(t *testing.T) {
	m := DefaultResponseModel()
	if m.WorkersPerHour(0) != 0 {
		t.Error("zero pay should draw no workers")
	}
	prev := 0.0
	for p := 1.0; p <= 10; p++ {
		rate := m.WorkersPerHour(p)
		if rate <= prev {
			t.Fatalf("arrival rate not increasing at %v cents", p)
		}
		prev = rate
	}
	// Diminishing returns: doubling pay less than doubles arrivals.
	if m.WorkersPerHour(2) >= 2*m.WorkersPerHour(1) {
		t.Error("elasticity >= 1")
	}
}

func TestCompletionHours(t *testing.T) {
	m := DefaultResponseModel()
	slow := m.CompletionHours(1000, 3, 1)
	fast := m.CompletionHours(1000, 3, 5)
	if fast >= slow {
		t.Errorf("paying more should be faster: %v vs %v", fast, slow)
	}
	if m.CompletionHours(0, 3, 1) != 0 {
		t.Error("no questions should take no time")
	}
	// More votes take longer.
	if m.CompletionHours(1000, 7, 2) <= m.CompletionHours(1000, 3, 2) {
		t.Error("more votes should take longer")
	}
}

func TestCheapestWithinDeadline(t *testing.T) {
	m := DefaultResponseModel()
	// Generous deadline: 1 cent suffices.
	p, ok := m.CheapestWithinDeadline(500, 3, 100, 1000)
	if !ok || p != 1 {
		t.Errorf("generous deadline price = %d, %v", p, ok)
	}
	// Tight deadline forces a higher price.
	p2, ok2 := m.CheapestWithinDeadline(5000, 3, 10000, 24)
	if !ok2 || p2 <= p {
		t.Errorf("tight deadline price = %d, %v", p2, ok2)
	}
	// Impossible: the deadline needs a price the budget cannot pay.
	if _, ok := m.CheapestWithinDeadline(5000, 3, 1, 24); ok {
		t.Error("impossible constraints satisfied")
	}
}
