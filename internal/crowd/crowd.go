// Package crowd implements Corleone's crowd engagement layer (§8): a Crowd
// abstraction over answer sources, the random-worker simulation model used
// by the paper's own sensitivity analysis, HIT batching (10 questions per
// HIT), the 2+1 / strong-majority / hybrid voting schemes, the label cache
// with reuse semantics, and per-question cost accounting.
package crowd

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"github.com/corleone-em/corleone/internal/record"
)

// Crowd produces one worker's answer to "does pair p match?". Each call
// represents a distinct worker answering one question.
type Crowd interface {
	Answer(p record.Pair) bool
}

// CrowdErr is the error-aware answer path. A crowd that can genuinely fail
// — a remote marketplace with outages, timeouts, straggling workers —
// implements it alongside Answer; the Runner detects it and re-solicits
// transient failures with backoff instead of recording a fabricated
// answer. Implementations classify failures by wrapping ErrUnavailable,
// ErrTimeout, or ErrCanceled (matched with errors.Is).
type CrowdErr interface {
	Crowd
	AnswerErr(p record.Pair) (bool, error)
}

var (
	// ErrUnavailable reports that the crowd channel failed before an answer
	// could be obtained (transport failure, marketplace outage). Nothing was
	// paid; the caller may retry.
	ErrUnavailable = errors.New("crowd: unavailable")
	// ErrTimeout reports that the crowd accepted the question but produced
	// no answer within the adapter's deadline — an abandoned or straggling
	// assignment. The caller may retry.
	ErrTimeout = errors.New("crowd: answer timed out")
	// ErrCanceled reports that cancellation fired while an answer was in
	// flight. Never retried.
	ErrCanceled = errors.New("crowd: canceled")
)

// RetryConfig bounds the Runner's re-solicitation of a failing CrowdErr
// adapter. Zero values select the defaults; a plain Crowd cannot fail and
// is never retried.
type RetryConfig struct {
	// Attempts is the maximum number of AnswerErr calls per answer
	// (default 3).
	Attempts int
	// Base is the backoff before the second attempt, doubling per retry
	// (default 50ms).
	Base time.Duration
	// Max caps the backoff (default 1s).
	Max time.Duration
}

// Oracle is a perfect crowd: every answer equals the ground truth. It is
// the 0%-error point of the paper's sensitivity analysis and the reference
// crowd for tests.
type Oracle struct {
	Truth *record.GroundTruth
}

// Answer implements Crowd.
func (o *Oracle) Answer(p record.Pair) bool { return o.Truth.Match(p) }

// Simulated is the random-worker model of [Ipeirotis et al.] the paper uses
// for simulation (§9.3): each answer independently flips the true label
// with probability ErrorRate. Safe for concurrent use.
type Simulated struct {
	Truth     *record.GroundTruth
	ErrorRate float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewSimulated builds a simulated crowd with the given error rate and seed.
func NewSimulated(truth *record.GroundTruth, errorRate float64, seed int64) *Simulated {
	return &Simulated{Truth: truth, ErrorRate: errorRate, rng: rand.New(rand.NewSource(seed))}
}

// Answer implements Crowd.
func (s *Simulated) Answer(p record.Pair) bool {
	truth := s.Truth.Match(p)
	s.mu.Lock()
	flip := s.rng.Float64() < s.ErrorRate
	s.mu.Unlock()
	if flip {
		return !truth
	}
	return truth
}

// Policy selects the voting scheme for combining noisy answers (§8.2).
type Policy int

const (
	// Policy21 is plain 2+1 majority voting: two answers, a third to break
	// disagreement.
	Policy21 Policy = iota
	// PolicyStrong always escalates: solicit until the majority leads by
	// at least 3, or 7 answers total.
	PolicyStrong
	// PolicyHybrid is the paper's final scheme: 2+1, escalating to strong
	// majority only when the running majority is positive, because false
	// positives distort recall estimation far more than false negatives.
	PolicyHybrid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Policy21:
		return "2+1"
	case PolicyStrong:
		return "strong"
	case PolicyHybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// Accounting tracks crowd spend: every solicited answer costs
// PricePerQuestion, and Pairs counts distinct pairs ever labeled (the
// "# Pairs" columns of Tables 2–4).
type Accounting struct {
	// Answers is the total number of worker answers solicited.
	Answers int
	// Pairs is the number of distinct pairs labeled.
	Pairs int
	// Cost is the total dollars paid to the crowd.
	Cost float64
	// HITs is the number of 10-question HITs posted (training batches).
	HITs int
	// Degraded reports that at least one answer could not be obtained this
	// session: the crowd channel failed past the retry budget and the
	// affected pairs were left unsettled rather than guessed. It is not
	// restored on resume — a resumed session that re-solicits successfully
	// clears the condition by construction.
	Degraded bool
}

// entry is a cached labeling of one pair: all answers solicited so far and
// the policy strength the stored label satisfies.
type entry struct {
	answers []bool
	label   bool
	settled Policy // strongest policy whose stopping rule the answers satisfy
	voted   bool   // a stopping rule completed; false while votes are in flight
	hasSeed bool   // a user-supplied seed label: authoritative, never re-asked
}

// Runner engages the crowd: it owns the label cache, voting, HIT packing,
// and accounting. Not safe for concurrent use; Corleone's control flow is
// sequential between crowd calls, as the paper's is. Concurrent pipelines
// give each run its own Runner — runs share nothing.
type Runner struct {
	crowd Crowd
	price float64
	cache map[record.Pair]*entry
	acct  Accounting

	// dirty tracks cache entries mutated since the last AppendLabels, so a
	// journal can flush incrementally instead of rewriting the whole cache.
	dirty map[record.Pair]struct{}
	// sinceFlush counts pairs settled outside training batches since the
	// last flush; once it reaches HITSize the runner treats it as a batch
	// boundary and fires AfterBatch.
	sinceFlush int
	// replay is the queue of recorded training batches to serve instead of
	// live packing (see QueueReplayBatches).
	replay [][]record.Pair
	// inBatch is true while LabelTrainingBatch is labeling; it suppresses
	// the every-HITSize flush boundary inside Label so labels never become
	// durable mid-batch without their batch record — a crash in that window
	// would otherwise make a resumed run pack HITs differently than the
	// journaled history.
	inBatch bool

	// Retry bounds re-solicitation when the crowd implements CrowdErr.
	Retry RetryConfig

	// AfterBatch, when non-nil, is called at crowd batch boundaries — after
	// each training batch, after each LabelAll, and after every HITSize
	// labels settled by individual Label calls. A journal flushes settled
	// labels here so a killed process re-pays at most one batch.
	AfterBatch func()
	// OnBatch, when non-nil, is called with each live training batch right
	// before AfterBatch, in the exact composition LabelTrainingBatch
	// returned. A journal records the batch so a resumed run can replay the
	// identical packing decisions (batch packing depends on cache state,
	// which differs on resume — see QueueReplayBatches). It runs before
	// AfterBatch so the batch record is durable before the batch's labels
	// are (see finishBatch for why the order matters).
	OnBatch func(batch []Labeled)
	// Cancel, when non-nil, makes the runner stop engaging the crowd as
	// soon as the channel closes: no further questions are solicited, and an
	// answer returned by a crowd that observed the same cancellation (e.g. a
	// remote marketplace adapter that aborts polling with a fabricated
	// answer) is discarded rather than recorded. Entries interrupted
	// mid-vote keep their genuine answers but stay unsettled, so a resumed
	// run tops them up instead of trusting a partial majority.
	Cancel <-chan struct{}
}

// Labeled aliases record.Labeled for hook signatures.
type Labeled = record.Labeled

// HITSize is the number of questions per HIT (§8.1).
const HITSize = 10

// NewRunner wraps a crowd with the given per-question price.
func NewRunner(c Crowd, pricePerQuestion float64) *Runner {
	return &Runner{
		crowd: c,
		price: pricePerQuestion,
		cache: make(map[record.Pair]*entry),
		dirty: make(map[record.Pair]struct{}),
	}
}

// Stats returns a copy of the accounting so far.
func (r *Runner) Stats() Accounting { return r.acct }

// SeedLabels installs the user-supplied labeled examples (§3's two positive
// and two negative seeds) into the cache as authoritative labels that never
// hit the crowd.
func (r *Runner) SeedLabels(seeds []record.Labeled) {
	for _, s := range seeds {
		r.cache[s.Pair] = &entry{label: s.Match, settled: PolicyStrong, voted: true, hasSeed: true}
		r.markDirty(s.Pair)
	}
}

func (r *Runner) markDirty(p record.Pair) {
	if r.dirty == nil {
		r.dirty = make(map[record.Pair]struct{})
	}
	r.dirty[p] = struct{}{}
}

// batchBoundary fires the AfterBatch hook and resets the settle counter.
func (r *Runner) batchBoundary() {
	r.sinceFlush = 0
	if r.AfterBatch != nil {
		r.AfterBatch()
	}
}

// AllLabeled returns every pair the runner has a settled label for (seeds
// and crowd-voted), sorted by pair so callers iterate deterministically.
// Used to reuse labels across modules (§8.3) without re-asking the crowd.
func (r *Runner) AllLabeled() []record.Labeled {
	pairs := make([]record.Pair, 0, len(r.cache))
	for p, e := range r.cache {
		if e.hasSeed || (e.voted && len(e.answers) >= 2) {
			pairs = append(pairs, p)
		}
	}
	record.SortPairs(pairs)
	out := make([]record.Labeled, len(pairs))
	for i, p := range pairs {
		out[i] = record.Labeled{Pair: p, Match: r.cache[p].label}
	}
	return out
}

// Cached reports whether p already has a label satisfying the policy, and
// the label if so.
func (r *Runner) Cached(p record.Pair, policy Policy) (bool, bool) {
	e, ok := r.cache[p]
	if !ok {
		return false, false
	}
	if !r.satisfies(e, policy) {
		return false, false
	}
	return e.label, true
}

// satisfies reports whether e's answers meet the stopping rule of policy.
func (r *Runner) satisfies(e *entry, policy Policy) bool {
	if e.hasSeed {
		return true
	}
	if !e.voted {
		// Votes still in flight (interrupted by a cancel): a partial answer
		// set must not masquerade as a settled label, even if its count
		// happens to meet a stopping rule's minimum.
		return false
	}
	switch policy {
	case Policy21:
		return e.settled >= Policy21 && len(e.answers) >= 2
	case PolicyHybrid:
		if e.settled == PolicyStrong || e.settled == PolicyHybrid {
			return true
		}
		// A 2+1 label is enough under hybrid only if it is negative.
		return len(e.answers) >= 2 && !e.label
	case PolicyStrong:
		return e.settled == PolicyStrong
	}
	return false
}

// canceled reports whether the runner's Cancel channel has closed.
func (r *Runner) canceled() bool {
	if r.Cancel == nil {
		return false
	}
	select {
	case <-r.Cancel:
		return true
	default:
		return false
	}
}

// askCrowd obtains one answer, re-soliciting transient failures with
// capped exponential backoff when the crowd implements CrowdErr. A plain
// Crowd cannot fail and is asked exactly once. Returns ErrCanceled as soon
// as the runner is canceled (including mid-backoff); ErrUnavailable or
// ErrTimeout only after the retry budget is exhausted.
func (r *Runner) askCrowd(p record.Pair) (bool, error) {
	ce, ok := r.crowd.(CrowdErr)
	if !ok {
		return r.crowd.Answer(p), nil
	}
	attempts := r.Retry.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := r.Retry.Base
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := r.Retry.Max
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Back off before retrying; a close of Cancel abandons the wait
			// immediately (a nil Cancel blocks that arm forever, which is
			// exactly the no-cancellation behavior).
			select {
			case <-r.Cancel:
				return false, ErrCanceled
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		if r.canceled() {
			return false, ErrCanceled
		}
		var a bool
		a, err = ce.AnswerErr(p)
		if err == nil {
			return a, nil
		}
		if errors.Is(err, ErrCanceled) {
			return false, ErrCanceled
		}
	}
	return false, err
}

// solicit asks the crowd for one more answer on p and records it. It
// reports whether an answer was actually recorded: when the runner is
// canceled it neither contacts the crowd nor records anything, and an
// answer that arrives while cancellation is in effect is discarded — a
// canceled crowd adapter (e.g. platform.RemoteCrowd) may return a
// fabricated answer, and recording one would corrupt the label cache and
// accounting. A crowd failure that survives the retry budget also records
// nothing and marks the accounting Degraded: the caller leaves the entry
// unsettled, the run continues with the labels it has, and a later round
// or a resumed session settles the pair.
func (r *Runner) solicit(p record.Pair, e *entry) bool {
	if r.canceled() {
		return false
	}
	a, err := r.askCrowd(p)
	if err != nil {
		if !errors.Is(err, ErrCanceled) {
			r.acct.Degraded = true
		}
		return false
	}
	if r.canceled() {
		return false
	}
	e.answers = append(e.answers, a)
	r.acct.Answers++
	r.acct.Cost += r.price
	return true
}

// abortVoting ends a Label call interrupted by cancellation or by a crowd
// failure that exhausted the retry budget. Genuine answers already
// recorded are kept (and stay journal-dirty, so they are flushed as
// in-flight votes), but the entry is not settled — a resumed run or a
// later labeling round tops the votes up under the full stopping rule. An
// entry that had settled at a weaker policy before this call keeps that
// label.
func (r *Runner) abortVoting(e *entry) bool {
	if !e.voted {
		e.label, _ = majority(e.answers)
	}
	return e.label
}

func majority(answers []bool) (label bool, lead int) {
	pos := 0
	for _, a := range answers {
		if a {
			pos++
		}
	}
	neg := len(answers) - pos
	if pos >= neg {
		return true, pos - neg
	}
	return false, neg - pos
}

// Label returns the crowd label for p under the given policy, soliciting
// only as many new answers as the cache requires (§8.3). The first time a
// pair is labeled it counts toward Accounting.Pairs.
func (r *Runner) Label(p record.Pair, policy Policy) bool {
	e, ok := r.cache[p]
	if ok && (e.hasSeed || r.satisfies(e, policy)) {
		return e.label
	}
	if r.canceled() {
		// A canceled run must not engage the crowd or record new state;
		// return the best cached information. Callers discard results
		// produced after cancellation anyway.
		if ok {
			return e.label
		}
		return false
	}
	if !ok {
		e = &entry{}
		r.cache[p] = e
		r.acct.Pairs++
	}
	r.markDirty(p)

	// Phase 1: 2+1. Reuse cached answers; top up to two, then break ties.
	for len(e.answers) < 2 {
		if !r.solicit(p, e) {
			return r.abortVoting(e)
		}
	}
	if _, lead := majority(e.answers); len(e.answers) == 2 && lead == 0 {
		if !r.solicit(p, e) {
			return r.abortVoting(e)
		}
	}
	lbl, lead := majority(e.answers)

	strong := policy == PolicyStrong || (policy == PolicyHybrid && lbl)
	if strong {
		// Phase 2: strong majority — lead >= 3 or 7 answers (§8.2).
		for lead < 3 && len(e.answers) < 7 {
			if !r.solicit(p, e) {
				return r.abortVoting(e)
			}
			lbl, lead = majority(e.answers)
		}
		e.settled = PolicyStrong
	} else {
		e.settled = Policy21
	}
	e.label = lbl
	e.voted = true
	// Individual Label calls (rule evaluation, estimation sampling) have no
	// explicit batch structure; treat every HITSize settles as a boundary so
	// journals flush at the same granularity as posted HITs. Suppressed
	// inside a training batch: its labels must not become durable before the
	// batch record is (see finishBatch).
	r.sinceFlush++
	if r.sinceFlush >= HITSize && !r.inBatch {
		r.batchBoundary()
	}
	return lbl
}

// LabelAll labels every pair under the policy and returns them in input
// order. Used by rule evaluation and accuracy estimation, which need labels
// for specific sampled pairs.
func (r *Runner) LabelAll(pairs []record.Pair, policy Policy) []record.Labeled {
	out := make([]record.Labeled, len(pairs))
	for i, p := range pairs {
		out[i] = record.Labeled{Pair: p, Match: r.Label(p, policy)}
	}
	if len(pairs) > 0 {
		r.batchBoundary()
	}
	return out
}

// LabelTrainingBatch implements the §8.3 HIT-packing semantics for an
// active-learning batch (nominally 20 examples, two 10-question HITs):
//
//   - k examples already in the cache, k > HITSize: return just those k
//     (the remaining examples are skipped this round).
//   - k <= HITSize: pack HITSize uncached examples into one HIT (or all of
//     them if fewer remain), label them, and return them plus the k cached.
//   - k == 0 and len(pairs) == 20: the normal case — two full HITs.
//
// The returned batch is what the matcher trains on this iteration.
//
// When a replay queue is loaded (QueueReplayBatches), the recorded batch
// composition is served instead: packing depends on which pairs are cached,
// and a resumed run's cache holds labels the original run had not yet paid
// for at the same point, so live packing would diverge from the journaled
// trajectory.
func (r *Runner) LabelTrainingBatch(pairs []record.Pair, policy Policy) []record.Labeled {
	r.inBatch = true
	defer func() { r.inBatch = false }()
	if len(r.replay) > 0 {
		rec := r.replay[0]
		r.replay = r.replay[1:]
		out := make([]record.Labeled, len(rec))
		for i, p := range rec {
			out[i] = record.Labeled{Pair: p, Match: r.Label(p, policy)}
		}
		return out
	}
	var cached []record.Labeled
	var fresh []record.Pair
	for _, p := range pairs {
		if lbl, ok := r.Cached(p, policy); ok {
			cached = append(cached, record.Labeled{Pair: p, Match: lbl})
		} else {
			fresh = append(fresh, p)
		}
	}
	if len(cached) > HITSize || len(fresh) == 0 {
		r.finishBatch(cached)
		return cached
	}
	// Pack complete HITs out of the uncached examples. With the nominal
	// batch of 20 and k <= 10 cached, this is exactly one or two HITs.
	want := len(fresh)
	if len(cached) > 0 && want > HITSize {
		want = HITSize
	}
	out := cached
	for i := 0; i < want; i++ {
		out = append(out, record.Labeled{Pair: fresh[i], Match: r.Label(fresh[i], policy)})
	}
	r.acct.HITs += (want + HITSize - 1) / HITSize
	r.finishBatch(out)
	return out
}

// finishBatch runs the batch-boundary hooks for a live training batch:
// OnBatch first, with the batch composition (journals make the batch
// record durable), then AfterBatch via batchBoundary (journals flush the
// batch's labels). The order closes a crash window: were labels durable
// before the batch record, a crash between the two would let a resumed run
// find the pairs cached and pack HITs differently than the journaled
// history. The inverse window — batch record durable, labels lost — is
// harmless: the recorded batch replays through the queue and its
// unjournaled answers are re-solicited live.
func (r *Runner) finishBatch(out []record.Labeled) {
	if r.OnBatch != nil {
		r.OnBatch(out)
	}
	r.batchBoundary()
}

// QueueReplayBatches loads recorded training-batch compositions (oldest
// first) to be served by the next LabelTrainingBatch calls in order. Used on
// resume together with LoadLabelLog: labels make replayed questions free,
// the batch log makes replayed packing exact, so a resumed run retraces the
// journaled trajectory deterministically before going live.
func (r *Runner) QueueReplayBatches(batches [][]record.Pair) {
	r.replay = append(r.replay, batches...)
}

// ReplayPending reports how many recorded batches have not been served yet.
func (r *Runner) ReplayPending() int { return len(r.replay) }
