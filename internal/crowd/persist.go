package crowd

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/corleone-em/corleone/internal/record"
)

// savedEntry is the serialized form of one cached labeling.
type savedEntry struct {
	A       int32  `json:"a"`
	B       int32  `json:"b"`
	Answers []bool `json:"answers,omitempty"`
	Label   bool   `json:"label"`
	Settled int    `json:"settled"`
	Seed    bool   `json:"seed,omitempty"`
}

// SaveLabels serializes the runner's label cache (every answer collected,
// vote states, seeds) as JSON. Crowd labels are paid for; persisting them
// lets a resumed or re-configured run reuse them at zero cost — the §8.3
// cache made durable.
func (r *Runner) SaveLabels(w io.Writer) error {
	var out []savedEntry
	for _, l := range r.AllLabeled() {
		e := r.cache[l.Pair]
		out = append(out, savedEntry{
			A:       l.Pair.A,
			B:       l.Pair.B,
			Answers: e.answers,
			Label:   e.label,
			Settled: int(e.settled),
			Seed:    e.hasSeed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// AppendLabels writes every cache entry mutated since the last call as one
// JSON object per line — the incremental form of SaveLabels for append-only
// journals. Unsettled in-flight entries (answers solicited but the policy's
// stopping rule not yet met) are written too, so a resumed run tops up their
// votes instead of re-paying from scratch. Entries are written in pair order
// for determinism; the dirty set is cleared only for entries successfully
// encoded. Returns the number of entries written.
func (r *Runner) AppendLabels(w io.Writer) (int, error) {
	r.sinceFlush = 0
	if len(r.dirty) == 0 {
		return 0, nil
	}
	pairs := make([]record.Pair, 0, len(r.dirty))
	for p := range r.dirty {
		pairs = append(pairs, p)
	}
	record.SortPairs(pairs)
	enc := json.NewEncoder(w)
	n := 0
	for _, p := range pairs {
		e := r.cache[p]
		if err := enc.Encode(savedEntry{
			A:       p.A,
			B:       p.B,
			Answers: e.answers,
			Label:   e.label,
			Settled: int(e.settled),
			Seed:    e.hasSeed,
		}); err != nil {
			return n, fmt.Errorf("crowd: append labels: %w", err)
		}
		delete(r.dirty, p)
		n++
	}
	return n, nil
}

// LoadLabelLog replays a label journal written by AppendLabels: one JSON
// entry per line, later lines superseding earlier ones for the same pair
// (an entry is re-appended whenever it gains answers or settles harder).
// Loaded entries do not count as dirty — they are already durable. Returns
// the number of log lines applied.
func (r *Runner) LoadLabelLog(rd io.Reader) (int, error) {
	dec := json.NewDecoder(rd)
	n := 0
	for dec.More() {
		var e savedEntry
		if err := dec.Decode(&e); err != nil {
			return n, fmt.Errorf("crowd: load label log: %w", err)
		}
		if e.Settled < 0 || e.Settled > int(PolicyHybrid) {
			return n, fmt.Errorf("crowd: log entry %d:%d has invalid vote state %d",
				e.A, e.B, e.Settled)
		}
		p := record.Pair{A: e.A, B: e.B}
		if _, exists := r.cache[p]; !exists && !e.Seed {
			// Journaled crowd labels were paid for in an earlier session;
			// they count as labeled pairs for reporting but add no new cost.
			// Seeds are excluded: a live run never counts them either.
			r.acct.Pairs++
		}
		r.cache[p] = &entry{
			answers: e.Answers,
			label:   e.Label,
			settled: Policy(e.Settled),
			hasSeed: e.Seed,
		}
		n++
	}
	return n, nil
}

// LoadLabels merges previously saved labels into the cache. Existing
// entries are kept (the live cache may have more answers than the file).
// Returns the number of entries loaded.
func (r *Runner) LoadLabels(rd io.Reader) (int, error) {
	var in []savedEntry
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return 0, fmt.Errorf("crowd: load labels: %w", err)
	}
	n := 0
	for _, e := range in {
		p := record.Pair{A: e.A, B: e.B}
		if _, exists := r.cache[p]; exists {
			continue
		}
		if e.Settled < 0 || e.Settled > int(PolicyHybrid) {
			return n, fmt.Errorf("crowd: entry %v has invalid vote state %d", p, e.Settled)
		}
		r.cache[p] = &entry{
			answers: e.Answers,
			label:   e.Label,
			settled: Policy(e.Settled),
			hasSeed: e.Seed,
		}
		// Loaded labels were paid for in an earlier session; they count as
		// labeled pairs for reporting but add no new cost.
		r.acct.Pairs++
		n++
	}
	return n, nil
}
