package crowd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/corleone-em/corleone/internal/record"
)

// savedEntry is the serialized form of one cached labeling.
type savedEntry struct {
	A       int32  `json:"a"`
	B       int32  `json:"b"`
	Answers []bool `json:"answers,omitempty"`
	Label   bool   `json:"label"`
	Settled int    `json:"settled"`
	Seed    bool   `json:"seed,omitempty"`
}

// voteStateUnsettled is the Settled encoding for an entry whose votes are
// still in flight: answers were collected but no stopping rule completed
// (a cancel interrupted voting). Such entries never serve from cache; a
// resumed run tops their votes up.
const voteStateUnsettled = -1

// voteState encodes an entry's settle state for serialization.
func voteState(e *entry) int {
	if !e.voted && !e.hasSeed {
		return voteStateUnsettled
	}
	return int(e.settled)
}

// SaveLabels serializes the runner's label cache (every answer collected,
// vote states, seeds) as JSON. Crowd labels are paid for; persisting them
// lets a resumed or re-configured run reuse them at zero cost — the §8.3
// cache made durable.
func (r *Runner) SaveLabels(w io.Writer) error {
	var out []savedEntry
	for _, l := range r.AllLabeled() {
		e := r.cache[l.Pair]
		out = append(out, savedEntry{
			A:       l.Pair.A,
			B:       l.Pair.B,
			Answers: e.answers,
			Label:   e.label,
			Settled: voteState(e),
			Seed:    e.hasSeed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// AppendLabels writes every cache entry mutated since the last call as one
// JSON object per line — the incremental form of SaveLabels for append-only
// journals. Unsettled in-flight entries (answers solicited but the policy's
// stopping rule not yet met) are written too, so a resumed run tops up their
// votes instead of re-paying from scratch. Entries are written in pair order
// for determinism; the dirty set is cleared only for entries successfully
// encoded. Returns the number of entries written.
func (r *Runner) AppendLabels(w io.Writer) (int, error) {
	r.sinceFlush = 0
	if len(r.dirty) == 0 {
		return 0, nil
	}
	pairs := make([]record.Pair, 0, len(r.dirty))
	for p := range r.dirty {
		pairs = append(pairs, p)
	}
	record.SortPairs(pairs)
	enc := json.NewEncoder(w)
	n := 0
	for _, p := range pairs {
		e := r.cache[p]
		if err := enc.Encode(savedEntry{
			A:       p.A,
			B:       p.B,
			Answers: e.answers,
			Label:   e.label,
			Settled: voteState(e),
			Seed:    e.hasSeed,
		}); err != nil {
			return n, fmt.Errorf("crowd: append labels: %w", err)
		}
		delete(r.dirty, p)
		n++
	}
	return n, nil
}

// DumpLabelLog writes the runner's entire label cache — every entry, not
// just the dirty set — in the AppendLabels line format, sorted by pair for
// determinism. It is the compaction form of the label log: feeding the
// dump back through LoadLabelLog restores the full cache and the full
// accounting (answers, pairs, cost) bit-identically, so a snapshot built
// from it can replace an arbitrarily long log prefix. The dirty set is
// left untouched: dumping is not flushing, and entries mutated since the
// last append still belong to the next incremental flush. Returns the
// number of entries written.
func (r *Runner) DumpLabelLog(w io.Writer) (int, error) {
	pairs := make([]record.Pair, 0, len(r.cache))
	for p := range r.cache {
		pairs = append(pairs, p)
	}
	record.SortPairs(pairs)
	enc := json.NewEncoder(w)
	for _, p := range pairs {
		e := r.cache[p]
		if err := enc.Encode(savedEntry{
			A:       p.A,
			B:       p.B,
			Answers: e.answers,
			Label:   e.label,
			Settled: voteState(e),
			Seed:    e.hasSeed,
		}); err != nil {
			return 0, fmt.Errorf("crowd: dump label log: %w", err)
		}
	}
	return len(pairs), nil
}

// LoadLabelLog replays a label journal written by AppendLabels: one JSON
// entry per line, later lines superseding earlier ones for the same pair
// (an entry is re-appended whenever it gains answers or settles harder).
// Loaded entries do not count as dirty — they are already durable.
//
// Replay restores the full accounting, not just the cache: every journaled
// answer was paid for by an earlier session of the SAME job, so Answers
// and Cost (answers × the runner's price) resume where the killed process
// left off — a resumed run's Config.Budget caps cumulative spend, not
// per-process spend. (Cross-job label reuse goes through LoadLabels, which
// deliberately adds no cost.)
//
// Replay is monotonic per pair: a line carrying strictly fewer answers
// than the cache already holds for its pair is skipped outright. Genuine
// histories only ever grow a pair's answer set, so such a line is a stale
// overlap — compaction replay feeds the snapshot first and then log lines
// the snapshot already covers (a crash between snapshot rename and log
// rotation leaves that window). Applying it would regress the cache and
// let the pair's next cumulative line re-charge answers the snapshot
// restore already paid; skipping makes every delta non-negative, so
// over-replay of covered history charges exactly zero.
//
// A malformed final line is tolerated and skipped: a hard kill can tear
// the trailing entry mid-write, and losing the in-flight tail is exactly
// the journal's durability contract. A malformed line followed by more
// data is corruption and fails the load. Returns the number of log lines
// applied.
func (r *Runner) LoadLabelLog(rd io.Reader) (int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	n := 0
	var torn error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if torn != nil {
			return n, fmt.Errorf("crowd: load label log: malformed line followed by more data: %w", torn)
		}
		var e savedEntry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = err
			continue
		}
		if e.Settled < voteStateUnsettled || e.Settled > int(PolicyHybrid) {
			return n, fmt.Errorf("crowd: log entry %d:%d has invalid vote state %d",
				e.A, e.B, e.Settled)
		}
		p := record.Pair{A: e.A, B: e.B}
		prev, exists := r.cache[p]
		if exists && len(e.Answers) < len(prev.answers) {
			// Stale overlap line (see the monotonicity doc above): the cache
			// already restored a strictly larger answer set for this pair, so
			// this line predates covered history. Skipped entirely — no state
			// change, no accounting.
			continue
		}
		if !exists && !e.Seed {
			// Seeds are excluded: a live run never counts them either.
			r.acct.Pairs++
		}
		paid := len(e.Answers)
		if exists {
			// A superseding line carries the pair's cumulative answers; only
			// the delta beyond what is already restored is newly paid spend.
			// The stale-line skip above keeps the delta non-negative.
			paid -= len(prev.answers)
		}
		if paid > 0 {
			r.acct.Answers += paid
			// Accumulate per answer, exactly as solicit does, so a resumed
			// run's Cost is bit-identical to the uninterrupted run's.
			for i := 0; i < paid; i++ {
				r.acct.Cost += r.price
			}
		}
		settled := Policy(e.Settled)
		if e.Settled == voteStateUnsettled {
			settled = Policy21
		}
		r.cache[p] = &entry{
			answers: e.Answers,
			label:   e.Label,
			settled: settled,
			voted:   e.Settled != voteStateUnsettled,
			hasSeed: e.Seed,
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("crowd: load label log: %w", err)
	}
	return n, nil
}

// RestoreHITs raises the HIT counter to n, a journaled cumulative count.
// Used on resume: replayed training batches serve from cache and never
// re-post HITs, so the counter is restored from the journal instead of
// recounted.
func (r *Runner) RestoreHITs(n int) {
	if n > r.acct.HITs {
		r.acct.HITs = n
	}
}

// LoadLabels merges previously saved labels into the cache. Existing
// entries are kept (the live cache may have more answers than the file).
// Returns the number of entries loaded.
func (r *Runner) LoadLabels(rd io.Reader) (int, error) {
	var in []savedEntry
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return 0, fmt.Errorf("crowd: load labels: %w", err)
	}
	n := 0
	for _, e := range in {
		p := record.Pair{A: e.A, B: e.B}
		if _, exists := r.cache[p]; exists {
			continue
		}
		if e.Settled < voteStateUnsettled || e.Settled > int(PolicyHybrid) {
			return n, fmt.Errorf("crowd: entry %v has invalid vote state %d", p, e.Settled)
		}
		settled := Policy(e.Settled)
		if e.Settled == voteStateUnsettled {
			settled = Policy21
		}
		r.cache[p] = &entry{
			answers: e.Answers,
			label:   e.Label,
			settled: settled,
			voted:   e.Settled != voteStateUnsettled,
			hasSeed: e.Seed,
		}
		// Loaded labels were paid for in an earlier session; they count as
		// labeled pairs for reporting but add no new cost.
		r.acct.Pairs++
		n++
	}
	return n, nil
}
