package crowd

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/corleone-em/corleone/internal/record"
)

// savedEntry is the serialized form of one cached labeling.
type savedEntry struct {
	A       int32  `json:"a"`
	B       int32  `json:"b"`
	Answers []bool `json:"answers,omitempty"`
	Label   bool   `json:"label"`
	Settled int    `json:"settled"`
	Seed    bool   `json:"seed,omitempty"`
}

// SaveLabels serializes the runner's label cache (every answer collected,
// vote states, seeds) as JSON. Crowd labels are paid for; persisting them
// lets a resumed or re-configured run reuse them at zero cost — the §8.3
// cache made durable.
func (r *Runner) SaveLabels(w io.Writer) error {
	var out []savedEntry
	for _, l := range r.AllLabeled() {
		e := r.cache[l.Pair]
		out = append(out, savedEntry{
			A:       l.Pair.A,
			B:       l.Pair.B,
			Answers: e.answers,
			Label:   e.label,
			Settled: int(e.settled),
			Seed:    e.hasSeed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// LoadLabels merges previously saved labels into the cache. Existing
// entries are kept (the live cache may have more answers than the file).
// Returns the number of entries loaded.
func (r *Runner) LoadLabels(rd io.Reader) (int, error) {
	var in []savedEntry
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return 0, fmt.Errorf("crowd: load labels: %w", err)
	}
	n := 0
	for _, e := range in {
		p := record.Pair{A: e.A, B: e.B}
		if _, exists := r.cache[p]; exists {
			continue
		}
		if e.Settled < 0 || e.Settled > int(PolicyHybrid) {
			return n, fmt.Errorf("crowd: entry %v has invalid vote state %d", p, e.Settled)
		}
		r.cache[p] = &entry{
			answers: e.Answers,
			label:   e.Label,
			settled: Policy(e.Settled),
			hasSeed: e.Seed,
		}
		// Loaded labels were paid for in an earlier session; they count as
		// labeled pairs for reporting but add no new cost.
		r.acct.Pairs++
		n++
	}
	return n, nil
}
