package crowd

import (
	"math"
	"sort"

	"github.com/corleone-em/corleone/internal/record"
)

// DawidSkeneResult is the output of EM label aggregation: posterior match
// probabilities per pair and a two-parameter confusion model per worker.
type DawidSkeneResult struct {
	// Posterior[p] is P(match | votes) for pair p.
	Posterior map[record.Pair]float64
	// Labels[p] thresholds the posterior at 0.5.
	Labels map[record.Pair]bool
	// Sensitivity[w] is worker w's estimated P(answer yes | true match);
	// Specificity[w] is P(answer no | true non-match). A spammer sits near
	// (0.5, 0.5); an adversary below (0.5, 0.5).
	Sensitivity []float64
	Specificity []float64
	// Prior is the estimated overall match prevalence.
	Prior float64
	// Iterations is the number of EM rounds until convergence.
	Iterations int
}

// DawidSkene runs the classic Dawid-Skene EM algorithm (the "[13]"
// expectation-maximization scheme §8.2 discusses) on attributed votes.
// numWorkers bounds the worker ids appearing in votes. maxIter and tol
// control convergence (posteriors moving less than tol ends the loop).
//
// Initialization is majority vote, the standard warm start. Laplace
// smoothing keeps degenerate workers (all answers identical) from
// producing 0/1 probabilities that freeze EM.
func DawidSkene(votes []Vote, numWorkers, maxIter int, tol float64) *DawidSkeneResult {
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	// Index votes by pair, deterministically.
	byPair := map[record.Pair][]Vote{}
	for _, v := range votes {
		byPair[v.Pair] = append(byPair[v.Pair], v)
	}
	pairs := make([]record.Pair, 0, len(byPair))
	for p := range byPair {
		pairs = append(pairs, p)
	}
	record.SortPairs(pairs)

	res := &DawidSkeneResult{
		Posterior:   make(map[record.Pair]float64, len(pairs)),
		Labels:      make(map[record.Pair]bool, len(pairs)),
		Sensitivity: make([]float64, numWorkers),
		Specificity: make([]float64, numWorkers),
	}
	if len(pairs) == 0 {
		return res
	}

	// Init posteriors from majority vote, softened.
	post := make(map[record.Pair]float64, len(pairs))
	for _, p := range pairs {
		pos, n := 0, 0
		for _, v := range byPair[p] {
			n++
			if v.Answer {
				pos++
			}
		}
		post[p] = (float64(pos) + 0.5) / (float64(n) + 1)
	}

	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		// M step: worker confusion and prior from soft labels.
		sensNum := make([]float64, numWorkers)
		sensDen := make([]float64, numWorkers)
		specNum := make([]float64, numWorkers)
		specDen := make([]float64, numWorkers)
		prior := 0.0
		for _, p := range pairs {
			mu := post[p]
			prior += mu
			for _, v := range byPair[p] {
				sensDen[v.Worker] += mu
				specDen[v.Worker] += 1 - mu
				if v.Answer {
					sensNum[v.Worker] += mu
				} else {
					specNum[v.Worker] += 1 - mu
				}
			}
		}
		prior /= float64(len(pairs))
		for w := 0; w < numWorkers; w++ {
			// Laplace smoothing with one pseudo-correct, one pseudo-wrong.
			res.Sensitivity[w] = (sensNum[w] + 1) / (sensDen[w] + 2)
			res.Specificity[w] = (specNum[w] + 1) / (specDen[w] + 2)
		}

		// E step: posteriors from the worker model, in log space.
		maxDelta := 0.0
		for _, p := range pairs {
			lpos := math.Log(clampProb(prior))
			lneg := math.Log(clampProb(1 - prior))
			for _, v := range byPair[p] {
				se := clampProb(res.Sensitivity[v.Worker])
				sp := clampProb(res.Specificity[v.Worker])
				if v.Answer {
					lpos += math.Log(se)
					lneg += math.Log(1 - sp)
				} else {
					lpos += math.Log(1 - se)
					lneg += math.Log(sp)
				}
			}
			// Normalize via log-sum-exp.
			m := math.Max(lpos, lneg)
			mu := math.Exp(lpos-m) / (math.Exp(lpos-m) + math.Exp(lneg-m))
			if d := math.Abs(mu - post[p]); d > maxDelta {
				maxDelta = d
			}
			post[p] = mu
		}
		res.Prior = prior
		if maxDelta < tol {
			break
		}
	}

	for _, p := range pairs {
		res.Posterior[p] = post[p]
		res.Labels[p] = post[p] > 0.5
	}
	return res
}

func clampProb(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// RankWorkersByQuality returns worker ids ordered best-first by estimated
// balanced accuracy (mean of sensitivity and specificity). Useful for
// screening: the bottom of this ranking is where spammers live.
func (r *DawidSkeneResult) RankWorkersByQuality() []int {
	ids := make([]int, len(r.Sensitivity))
	for i := range ids {
		ids[i] = i
	}
	quality := func(w int) float64 { return (r.Sensitivity[w] + r.Specificity[w]) / 2 }
	sort.SliceStable(ids, func(i, j int) bool { return quality(ids[i]) > quality(ids[j]) })
	return ids
}
