package crowd

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/corleone-em/corleone/internal/record"
)

func TestSaveLoadLabels(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r1.SeedLabels([]record.Labeled{{Pair: record.P(9, 9), Match: true}})
	r1.Label(record.P(0, 0), PolicyHybrid) // positive, strong-settled
	r1.Label(record.P(0, 1), Policy21)     // negative, 2+1-settled

	var buf bytes.Buffer
	if err := r1.SaveLabels(&buf); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	n, err := r2.LoadLabels(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d entries, want 3", n)
	}
	// Cached labels must serve without soliciting new answers.
	if lbl := r2.Label(record.P(0, 0), PolicyHybrid); !lbl {
		t.Error("restored positive label lost")
	}
	if lbl := r2.Label(record.P(0, 1), Policy21); lbl {
		t.Error("restored negative label lost")
	}
	if lbl := r2.Label(record.P(9, 9), PolicyStrong); !lbl {
		t.Error("restored seed label lost")
	}
	if r2.Stats().Answers != 0 || r2.Stats().Cost != 0 {
		t.Errorf("restored labels cost money: %+v", r2.Stats())
	}
	// A 2+1 negative does NOT satisfy strong; upgrading solicits answers.
	r2.Label(record.P(0, 1), PolicyStrong)
	if r2.Stats().Answers == 0 {
		t.Error("strong upgrade of a 2+1 label should solicit answers")
	}
}

func TestLoadLabelsKeepsExisting(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r1.Label(record.P(0, 0), Policy21)
	var buf bytes.Buffer
	if err := r1.SaveLabels(&buf); err != nil {
		t.Fatal(err)
	}
	// r2 already has a conflicting (seed) label; load must not clobber it.
	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r2.SeedLabels([]record.Labeled{{Pair: record.P(0, 0), Match: false}})
	if _, err := r2.LoadLabels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if lbl := r2.Label(record.P(0, 0), Policy21); lbl {
		t.Error("load clobbered an existing entry")
	}
}

// TestAppendLabelsRoundTripInFlight covers the incremental journal path
// with entries in every vote state, including unsettled in-flight votes —
// answers solicited but the stopping rule not yet met — which SaveLabels'
// settled-only snapshot never carries.
func TestAppendLabelsRoundTripInFlight(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r1.SeedLabels([]record.Labeled{{Pair: record.P(9, 9), Match: true}})
	r1.Label(record.P(0, 0), PolicyHybrid) // positive, strong-settled
	r1.Label(record.P(0, 1), Policy21)     // negative, 2+1-settled
	// An in-flight entry: one vote collected, crash before the second.
	r1.cache[record.P(1, 2)] = &entry{answers: []bool{false}}
	r1.markDirty(record.P(1, 2))

	var buf bytes.Buffer
	n, err := r1.AppendLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("appended %d entries, want 4", n)
	}
	// A second append with nothing new is empty — the dirty set cleared.
	var buf2 bytes.Buffer
	if n, err := r1.AppendLabels(&buf2); err != nil || n != 0 {
		t.Fatalf("re-append wrote %d entries (err %v), want 0", n, err)
	}

	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	if n, err := r2.LoadLabelLog(bytes.NewReader(buf.Bytes())); err != nil || n != 4 {
		t.Fatalf("loaded %d entries (err %v), want 4", n, err)
	}
	// Settled entries serve without re-soliciting, and replay restores the
	// journaled spend (every logged answer was paid for by the same job):
	// 6 answers across the three crowd-voted entries, none for the seed.
	restored := r2.Stats()
	if restored.Answers != 6 || math.Abs(restored.Cost-0.06) > 1e-9 {
		t.Errorf("restored accounting = %+v, want 6 answers at $0.06", restored)
	}
	if restored.Pairs != 3 {
		t.Errorf("restored Pairs = %d, want 3 (seed excluded)", restored.Pairs)
	}
	if lbl := r2.Label(record.P(0, 0), PolicyHybrid); !lbl {
		t.Error("restored positive label lost")
	}
	if lbl := r2.Label(record.P(9, 9), PolicyStrong); !lbl {
		t.Error("restored seed label lost")
	}
	if st := r2.Stats(); st.Answers != restored.Answers || st.Cost != restored.Cost {
		t.Errorf("serving restored labels solicited new answers: %+v", st)
	}
	// The in-flight entry must not satisfy any policy yet...
	if _, ok := r2.Cached(record.P(1, 2), Policy21); ok {
		t.Error("in-flight entry served as settled")
	}
	// ...and settling it tops up from the surviving vote instead of
	// starting over: one more answer reaches the two 2+1 needs.
	r2.Label(record.P(1, 2), Policy21)
	if got := r2.Stats().Answers - restored.Answers; got != 1 {
		t.Errorf("topping up an in-flight 1-vote entry took %d answers, want 1", got)
	}
}

// TestAppendLabelsSupersede verifies append-only update semantics: when an
// entry gains answers and is re-appended, replaying the log keeps the
// latest version.
func TestAppendLabelsSupersede(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	var log bytes.Buffer
	r1.Label(record.P(0, 1), Policy21) // negative at 2+1
	if _, err := r1.AppendLabels(&log); err != nil {
		t.Fatal(err)
	}
	r1.Label(record.P(0, 1), PolicyStrong) // upgraded: more answers
	if _, err := r1.AppendLabels(&log); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	if _, err := r2.LoadLabelLog(bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Cached(record.P(0, 1), PolicyStrong); !ok {
		t.Error("superseding log line lost: strong settle not restored")
	}
	if r2.Stats().Pairs != 1 {
		t.Errorf("two log lines for one pair counted as %d pairs", r2.Stats().Pairs)
	}
	// Accounting restore is delta-based: the superseding line repeats the
	// pair's cumulative answers, which must not be double-counted.
	if r2.Stats().Answers != r1.Stats().Answers {
		t.Errorf("restored %d answers, original paid %d", r2.Stats().Answers, r1.Stats().Answers)
	}
	if r2.Stats().Cost != r1.Stats().Cost {
		t.Errorf("restored cost %v, original paid %v", r2.Stats().Cost, r1.Stats().Cost)
	}
}

// TestLoadLabelLogOverlapMonotonic reproduces the crash window between a
// compaction snapshot's rename and the label-log rotation: replay loads
// the snapshot (the pair restored at its full answer count) and then the
// whole un-rotated live log, which still holds the pair's earlier
// cumulative lines. A stale line must neither regress the cache nor set up
// the pair's later line to re-charge answers the snapshot restore already
// paid — the over-replay must converge at exactly zero extra cost.
func TestLoadLabelLogOverlapMonotonic(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	var live bytes.Buffer
	r1.Label(record.P(0, 1), Policy21) // two answers, 2+1-settled
	if _, err := r1.AppendLabels(&live); err != nil {
		t.Fatal(err)
	}
	r1.Label(record.P(0, 1), PolicyStrong) // topped up: more answers
	if _, err := r1.AppendLabels(&live); err != nil {
		t.Fatal(err)
	}
	// The snapshot a checkpoint would write right after those flushes.
	var snap bytes.Buffer
	if _, err := r1.DumpLabelLog(&snap); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	if _, err := r2.LoadLabelLog(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	afterSnap := r2.Stats()
	if afterSnap.Answers != r1.Stats().Answers {
		t.Fatalf("snapshot restore = %d answers, original paid %d",
			afterSnap.Answers, r1.Stats().Answers)
	}
	// Replay the overlapping live log on top: both cumulative lines,
	// including the stale first one.
	if _, err := r2.LoadLabelLog(bytes.NewReader(live.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats(); got != afterSnap {
		t.Errorf("overlap replay changed accounting: %+v, want %+v (zero extra cost)",
			got, afterSnap)
	}
	if _, ok := r2.Cached(record.P(0, 1), PolicyStrong); !ok {
		t.Error("overlap replay regressed the entry below its strong settle")
	}
}

func TestLoadLabelLogRejectsGarbage(t *testing.T) {
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	// A malformed line with more data after it is corruption, not a torn
	// tail, and must fail the load.
	bad := "not json\n" + `{"a":0,"b":0,"label":true,"settled":0,"answers":[true,true]}` + "\n"
	if _, err := r.LoadLabelLog(strings.NewReader(bad)); err == nil {
		t.Error("garbage mid-log accepted")
	}
	if _, err := r.LoadLabelLog(strings.NewReader(`{"a":0,"b":0,"settled":99}`)); err == nil {
		t.Error("invalid vote state accepted")
	}
}

// TestLoadLabelLogToleratesTornTail verifies crash durability: a hard kill
// can tear the final journal line mid-write, and replay must recover every
// complete line instead of failing the resume.
func TestLoadLabelLogToleratesTornTail(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r1.Label(record.P(0, 0), PolicyHybrid)
	r1.Label(record.P(0, 1), Policy21)
	var log bytes.Buffer
	if _, err := r1.AppendLabels(&log); err != nil {
		t.Fatal(err)
	}
	full := log.String()
	torn := full[:len(full)-7] // cut mid-way through the last line

	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	n, err := r2.LoadLabelLog(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail failed the load: %v", err)
	}
	if n != 1 {
		t.Fatalf("loaded %d entries from torn log, want 1", n)
	}
	if _, ok := r2.Cached(record.P(0, 0), PolicyHybrid); !ok {
		t.Error("intact line before the torn tail was lost")
	}
}

func TestLoadLabelsRejectsGarbage(t *testing.T) {
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	if _, err := r.LoadLabels(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := r.LoadLabels(strings.NewReader(`[{"a":0,"b":0,"settled":99}]`)); err == nil {
		t.Error("invalid vote state accepted")
	}
}

// TestDumpLabelLogSnapshot pins the snapshot writer's contract: DumpLabelLog
// emits the whole cache (settled, in-flight, seed) in the AppendLabels line
// format, LoadLabelLog of the dump alone restores labels and accounting
// bit-identically, and the dirty set is untouched — a snapshot is a read,
// not a flush.
func TestDumpLabelLogSnapshot(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r1.SeedLabels([]record.Labeled{{Pair: record.P(9, 9), Match: true}})
	r1.Label(record.P(0, 0), PolicyHybrid)
	r1.Label(record.P(0, 1), Policy21)
	r1.cache[record.P(1, 2)] = &entry{answers: []bool{false}} // in-flight
	r1.markDirty(record.P(1, 2))

	var snap bytes.Buffer
	n, err := r1.DumpLabelLog(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("dumped %d entries, want 4 (3 crowd + 1 seed)", n)
	}
	// The dump is a snapshot, not a flush: the dirty in-flight entry still
	// lands in the next incremental append.
	var incr bytes.Buffer
	if n, err := r1.AppendLabels(&incr); err != nil || n == 0 {
		t.Fatalf("append after dump wrote %d entries (err %v), want the dirty set intact", n, err)
	}

	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	if n, err := r2.LoadLabelLog(bytes.NewReader(snap.Bytes())); err != nil || n != 4 {
		t.Fatalf("loaded %d entries (err %v), want 4", n, err)
	}
	// Replay pays for every logged answer: 6 across the three crowd-voted
	// entries (the hand-injected in-flight vote included), seed free.
	got := r2.Stats()
	if got.Answers != 6 || got.Pairs != 3 || math.Abs(got.Cost-0.06) > 1e-9 {
		t.Errorf("restored accounting = %+v, want 6 answers over 3 pairs at $0.06", got)
	}
	if lbl, ok := r2.Cached(record.P(0, 0), PolicyHybrid); !ok || !lbl {
		t.Error("settled positive label lost in dump round-trip")
	}
	if lbl, ok := r2.Cached(record.P(9, 9), PolicyStrong); !ok || !lbl {
		t.Error("seed label lost in dump round-trip")
	}
	if _, ok := r2.Cached(record.P(1, 2), Policy21); ok {
		t.Error("in-flight entry served as settled after dump round-trip")
	}
	// Dumping the restored runner reproduces the identical bytes: the
	// format is canonical (sorted by pair), so snapshot-of-snapshot is a
	// fixed point.
	var snap2 bytes.Buffer
	if _, err := r2.DumpLabelLog(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), snap2.Bytes()) {
		t.Error("dump of restored runner differs from original dump")
	}
	// And a second restore lands on bit-identical accounting — the
	// property the runsvc snapshot header cross-check relies on.
	r3 := NewRunner(&Oracle{Truth: truth}, 0.01)
	if _, err := r3.LoadLabelLog(bytes.NewReader(snap2.Bytes())); err != nil {
		t.Fatal(err)
	}
	st2, st3 := r2.Stats(), r3.Stats()
	if st3.Answers != st2.Answers || st3.Pairs != st2.Pairs ||
		math.Float64bits(st3.Cost) != math.Float64bits(st2.Cost) {
		t.Errorf("second restore %+v not bit-identical to first %+v", st3, st2)
	}
}
