package crowd

import (
	"bytes"
	"strings"
	"testing"

	"github.com/corleone-em/corleone/internal/record"
)

func TestSaveLoadLabels(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r1.SeedLabels([]record.Labeled{{Pair: record.P(9, 9), Match: true}})
	r1.Label(record.P(0, 0), PolicyHybrid) // positive, strong-settled
	r1.Label(record.P(0, 1), Policy21)     // negative, 2+1-settled

	var buf bytes.Buffer
	if err := r1.SaveLabels(&buf); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	n, err := r2.LoadLabels(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d entries, want 3", n)
	}
	// Cached labels must serve without soliciting new answers.
	if lbl := r2.Label(record.P(0, 0), PolicyHybrid); !lbl {
		t.Error("restored positive label lost")
	}
	if lbl := r2.Label(record.P(0, 1), Policy21); lbl {
		t.Error("restored negative label lost")
	}
	if lbl := r2.Label(record.P(9, 9), PolicyStrong); !lbl {
		t.Error("restored seed label lost")
	}
	if r2.Stats().Answers != 0 || r2.Stats().Cost != 0 {
		t.Errorf("restored labels cost money: %+v", r2.Stats())
	}
	// A 2+1 negative does NOT satisfy strong; upgrading solicits answers.
	r2.Label(record.P(0, 1), PolicyStrong)
	if r2.Stats().Answers == 0 {
		t.Error("strong upgrade of a 2+1 label should solicit answers")
	}
}

func TestLoadLabelsKeepsExisting(t *testing.T) {
	truth := truth2()
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r1.Label(record.P(0, 0), Policy21)
	var buf bytes.Buffer
	if err := r1.SaveLabels(&buf); err != nil {
		t.Fatal(err)
	}
	// r2 already has a conflicting (seed) label; load must not clobber it.
	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	r2.SeedLabels([]record.Labeled{{Pair: record.P(0, 0), Match: false}})
	if _, err := r2.LoadLabels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if lbl := r2.Label(record.P(0, 0), Policy21); lbl {
		t.Error("load clobbered an existing entry")
	}
}

func TestLoadLabelsRejectsGarbage(t *testing.T) {
	r := NewRunner(&Oracle{Truth: truth2()}, 0.01)
	if _, err := r.LoadLabels(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := r.LoadLabels(strings.NewReader(`[{"a":0,"b":0,"settled":99}]`)); err == nil {
		t.Error("invalid vote state accepted")
	}
}
