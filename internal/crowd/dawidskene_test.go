package crowd

import (
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/record"
)

func panelTruth(n int, rng *rand.Rand) (*record.GroundTruth, []record.Pair) {
	var pairs []record.Pair
	var matches []record.Pair
	for i := 0; i < n; i++ {
		p := record.P(i, i)
		pairs = append(pairs, p)
		if rng.Intn(2) == 0 {
			matches = append(matches, p)
		}
	}
	return record.NewGroundTruth(matches), pairs
}

func TestPanelAnswerDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth, pairs := panelTruth(1, rng)
	_ = pairs
	p := UniformPanel(truth, 5, 0.8, 2)
	correct := 0
	const trials = 20000
	target := record.P(0, 0)
	want := truth.Match(target)
	for i := 0; i < trials; i++ {
		if p.Answer(target) == want {
			correct++
		}
	}
	rate := float64(correct) / trials
	if rate < 0.77 || rate > 0.83 {
		t.Errorf("accuracy %.3f, want ~0.8", rate)
	}
}

func TestPanelSpammerIsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth, _ := panelTruth(1, rng)
	p := NewPanel(truth, []WorkerSpec{{Kind: Spammer}}, 3)
	yes := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if p.Answer(record.P(0, 0)) {
			yes++
		}
	}
	rate := float64(yes) / trials
	if rate < 0.47 || rate > 0.53 {
		t.Errorf("spammer yes-rate %.3f, want ~0.5", rate)
	}
}

func TestPanelAdversarial(t *testing.T) {
	truth := record.NewGroundTruth([]record.Pair{record.P(0, 0)})
	p := NewPanel(truth, []WorkerSpec{{Kind: Adversarial, Accuracy: 1}}, 4)
	for i := 0; i < 50; i++ {
		if p.Answer(record.P(0, 0)) {
			t.Fatal("perfect adversary answered correctly")
		}
	}
}

func TestPanelEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPanel(record.NewGroundTruth(nil), nil, 1)
}

func TestCollectVotesAndMajority(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth, pairs := panelTruth(100, rng)
	p := UniformPanel(truth, 10, 0.9, 6)
	votes := CollectVotes(p, pairs, 5)
	if len(votes) != 500 {
		t.Fatalf("votes = %d", len(votes))
	}
	labels := MajorityLabels(votes)
	wrong := 0
	for _, pair := range pairs {
		if labels[pair] != truth.Match(pair) {
			wrong++
		}
	}
	if wrong > 10 {
		t.Errorf("majority vote wrong on %d/100 with 90%% workers", wrong)
	}
}

func TestDawidSkeneRecoversLabelsAndWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth, pairs := panelTruth(300, rng)
	// 6 good workers, 3 spammers, 1 adversary.
	specs := []WorkerSpec{
		{Diligent, 0.9}, {Diligent, 0.9}, {Diligent, 0.85},
		{Diligent, 0.85}, {Diligent, 0.8}, {Diligent, 0.8},
		{Spammer, 0}, {Spammer, 0}, {Spammer, 0},
		{Adversarial, 0.9},
	}
	p := NewPanel(truth, specs, 8)
	votes := CollectVotes(p, pairs, 7)
	res := DawidSkene(votes, p.NumWorkers(), 100, 1e-7)

	wrongDS, wrongMaj := 0, 0
	maj := MajorityLabels(votes)
	for _, pair := range pairs {
		if res.Labels[pair] != truth.Match(pair) {
			wrongDS++
		}
		if maj[pair] != truth.Match(pair) {
			wrongMaj++
		}
	}
	if wrongDS > wrongMaj {
		t.Errorf("Dawid-Skene (%d wrong) should beat majority (%d wrong) on a spammy panel",
			wrongDS, wrongMaj)
	}
	// Worker quality: the adversary must rank last, a good worker first.
	rank := res.RankWorkersByQuality()
	if rank[len(rank)-1] != 9 {
		t.Errorf("adversary ranked %v, want last; ranking %v", rank[len(rank)-1], rank)
	}
	if rank[0] > 5 {
		t.Errorf("best-ranked worker %d is not a diligent one", rank[0])
	}
	// Spammer confusion parameters sit near (0.5, 0.5).
	for w := 6; w <= 8; w++ {
		if res.Sensitivity[w] < 0.3 || res.Sensitivity[w] > 0.7 ||
			res.Specificity[w] < 0.3 || res.Specificity[w] > 0.7 {
			t.Errorf("spammer %d confusion (%.2f, %.2f) not near (0.5, 0.5)",
				w, res.Sensitivity[w], res.Specificity[w])
		}
	}
	if res.Iterations == 0 {
		t.Error("no EM iterations recorded")
	}
}

func TestDawidSkeneEmptyVotes(t *testing.T) {
	res := DawidSkene(nil, 3, 10, 1e-6)
	if len(res.Labels) != 0 {
		t.Error("no votes should give no labels")
	}
}

func TestDawidSkenePosteriorRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth, pairs := panelTruth(50, rng)
	p := UniformPanel(truth, 4, 0.7, 10)
	votes := CollectVotes(p, pairs, 3)
	res := DawidSkene(votes, 4, 50, 1e-6)
	for pr, post := range res.Posterior {
		if post < 0 || post > 1 {
			t.Fatalf("posterior[%v] = %v", pr, post)
		}
	}
}
