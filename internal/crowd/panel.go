package crowd

import (
	"math/rand"
	"sync"

	"github.com/corleone-em/corleone/internal/record"
)

// WorkerKind describes a simulated worker archetype. Real crowds mix
// diligent workers with spammers and the occasional adversary; §8.2's
// aggregation schemes exist to survive exactly this mix.
type WorkerKind int

const (
	// Diligent workers answer correctly with their individual accuracy.
	Diligent WorkerKind = iota
	// Spammer workers answer uniformly at random, ignoring the question.
	Spammer
	// Adversarial workers answer incorrectly with their "accuracy"
	// (i.e., they are reliably wrong).
	Adversarial
)

// WorkerSpec describes one simulated worker.
type WorkerSpec struct {
	Kind WorkerKind
	// Accuracy is the per-answer probability of the kind's characteristic
	// behaviour: correctness for Diligent, wrongness for Adversarial;
	// ignored for Spammer.
	Accuracy float64
}

// Panel is a crowd of heterogeneous simulated workers. Each call to Answer
// picks a random worker; AnswerAs also reports which worker answered, for
// aggregation schemes that model worker quality. Safe for concurrent use.
type Panel struct {
	Truth   *record.GroundTruth
	workers []WorkerSpec

	mu  sync.Mutex
	rng *rand.Rand
}

// NewPanel builds a panel over the gold standard.
func NewPanel(truth *record.GroundTruth, workers []WorkerSpec, seed int64) *Panel {
	if len(workers) == 0 {
		panic("crowd: empty panel")
	}
	return &Panel{Truth: truth, workers: workers, rng: rand.New(rand.NewSource(seed))}
}

// UniformPanel builds n diligent workers with the same accuracy.
func UniformPanel(truth *record.GroundTruth, n int, accuracy float64, seed int64) *Panel {
	ws := make([]WorkerSpec, n)
	for i := range ws {
		ws[i] = WorkerSpec{Kind: Diligent, Accuracy: accuracy}
	}
	return NewPanel(truth, ws, seed)
}

// MixedPanel builds the standard stress mix: nGood diligent workers at the
// given accuracy plus nSpam spammers.
func MixedPanel(truth *record.GroundTruth, nGood int, accuracy float64,
	nSpam int, seed int64) *Panel {

	ws := make([]WorkerSpec, 0, nGood+nSpam)
	for i := 0; i < nGood; i++ {
		ws = append(ws, WorkerSpec{Kind: Diligent, Accuracy: accuracy})
	}
	for i := 0; i < nSpam; i++ {
		ws = append(ws, WorkerSpec{Kind: Spammer})
	}
	return NewPanel(truth, ws, seed)
}

// NumWorkers returns the panel size.
func (p *Panel) NumWorkers() int { return len(p.workers) }

// Answer implements Crowd: a random worker answers.
func (p *Panel) Answer(pair record.Pair) bool {
	a, _ := p.AnswerAs(pair)
	return a
}

// AnswerAs returns one answer along with the answering worker's id.
func (p *Panel) AnswerAs(pair record.Pair) (answer bool, worker int) {
	truth := p.Truth.Match(pair)
	p.mu.Lock()
	defer p.mu.Unlock()
	worker = p.rng.Intn(len(p.workers))
	w := p.workers[worker]
	switch w.Kind {
	case Spammer:
		return p.rng.Float64() < 0.5, worker
	case Adversarial:
		if p.rng.Float64() < w.Accuracy {
			return !truth, worker
		}
		return truth, worker
	default:
		if p.rng.Float64() < w.Accuracy {
			return truth, worker
		}
		return !truth, worker
	}
}

// Vote is one worker's recorded answer to one question, the input unit for
// the aggregation schemes below.
type Vote struct {
	Pair   record.Pair
	Worker int
	Answer bool
}

// CollectVotes asks the panel for k attributed answers per pair.
func CollectVotes(p *Panel, pairs []record.Pair, k int) []Vote {
	votes := make([]Vote, 0, len(pairs)*k)
	for _, pair := range pairs {
		for i := 0; i < k; i++ {
			a, w := p.AnswerAs(pair)
			votes = append(votes, Vote{Pair: pair, Worker: w, Answer: a})
		}
	}
	return votes
}

// MajorityLabels aggregates votes per pair by simple majority (ties go
// negative, EM's safe default).
func MajorityLabels(votes []Vote) map[record.Pair]bool {
	pos := map[record.Pair]int{}
	tot := map[record.Pair]int{}
	for _, v := range votes {
		tot[v.Pair]++
		if v.Answer {
			pos[v.Pair]++
		}
	}
	out := make(map[record.Pair]bool, len(tot))
	for p, n := range tot {
		out[p] = pos[p]*2 > n
	}
	return out
}
