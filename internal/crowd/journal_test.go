package crowd

import (
	"testing"

	"github.com/corleone-em/corleone/internal/record"
)

// TestBatchHooks verifies the journal hooks fire at batch boundaries: after
// every live training batch (with its composition), and after every HITSize
// labels settled by individual Label calls.
func TestBatchHooks(t *testing.T) {
	truth := truth2()
	r := NewRunner(&Oracle{Truth: truth}, 0.01)
	var boundaries int
	var batches [][]record.Labeled
	r.AfterBatch = func() { boundaries++ }
	r.OnBatch = func(b []Labeled) {
		cp := make([]record.Labeled, len(b))
		copy(cp, b)
		batches = append(batches, cp)
	}

	req := []record.Pair{record.P(0, 0), record.P(0, 1), record.P(1, 1)}
	out := r.LabelTrainingBatch(req, Policy21)
	if boundaries != 1 || len(batches) != 1 {
		t.Fatalf("training batch fired %d boundaries, %d batch records; want 1, 1",
			boundaries, len(batches))
	}
	if len(batches[0]) != len(out) {
		t.Errorf("OnBatch saw %d labels, batch returned %d", len(batches[0]), len(out))
	}

	// HITSize individual settles count as one boundary (no batch record).
	for i := 0; i < HITSize; i++ {
		r.Label(record.P(2, i), Policy21)
	}
	if boundaries != 2 {
		t.Errorf("%d boundaries after %d individual labels, want 2", boundaries, HITSize)
	}
	if len(batches) != 1 {
		t.Errorf("individual labels produced a batch record")
	}

	// LabelAll is a boundary of its own.
	r.LabelAll([]record.Pair{record.P(3, 0), record.P(3, 1)}, Policy21)
	if boundaries != 3 {
		t.Errorf("%d boundaries after LabelAll, want 3", boundaries)
	}
}

// TestReplayBatches verifies that queued batch records are served verbatim,
// from cache, without consulting live packing — the resume path.
func TestReplayBatches(t *testing.T) {
	truth := truth2()

	// Original session: label a batch, record its composition.
	r1 := NewRunner(&Oracle{Truth: truth}, 0.01)
	var recorded [][]record.Pair
	r1.OnBatch = func(b []Labeled) {
		ps := make([]record.Pair, len(b))
		for i, l := range b {
			ps[i] = l.Pair
		}
		recorded = append(recorded, ps)
	}
	req := []record.Pair{record.P(0, 0), record.P(0, 1), record.P(1, 0), record.P(1, 1)}
	orig := r1.LabelTrainingBatch(req, Policy21)

	// Resumed session: labels restored, batch queued for replay. The
	// request deliberately differs (extra pair) — replay must ignore it and
	// serve the recorded composition.
	r2 := NewRunner(&Oracle{Truth: truth}, 0.01)
	for _, l := range orig {
		r2.cache[l.Pair] = r1.cache[l.Pair]
	}
	r2.QueueReplayBatches(recorded)
	if r2.ReplayPending() != 1 {
		t.Fatalf("ReplayPending = %d, want 1", r2.ReplayPending())
	}
	got := r2.LabelTrainingBatch(append(req, record.P(5, 5)), Policy21)
	if r2.ReplayPending() != 0 {
		t.Errorf("replay queue not consumed")
	}
	if len(got) != len(orig) {
		t.Fatalf("replayed batch has %d labels, original %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Errorf("replayed label %d = %+v, original %+v", i, got[i], orig[i])
		}
	}
	if st := r2.Stats(); st.Answers != 0 || st.Cost != 0 {
		t.Errorf("replaying a journaled batch cost money: %+v", st)
	}

	// After the queue drains, live packing resumes.
	live := r2.LabelTrainingBatch([]record.Pair{record.P(6, 6)}, Policy21)
	if len(live) != 1 || r2.Stats().Answers == 0 {
		t.Errorf("live packing did not resume after replay: %d labels, %+v",
			len(live), r2.Stats())
	}
}
