package crowd

import (
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/record"
)

func TestGoldenGateBansSpammers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth, pairs := panelTruth(200, rng)
	specs := []WorkerSpec{
		{Diligent, 0.95}, {Diligent, 0.95},
		{Adversarial, 0.95}, {Adversarial, 0.95},
	}
	p := NewPanel(truth, specs, 12)
	gold := []record.Labeled{}
	for i := 0; i < 12; i++ {
		gold = append(gold, record.Labeled{Pair: pairs[i], Match: truth.Match(pairs[i])})
	}
	gate := NewGoldenGate(p, gold, 0.75, 8)

	// Drive enough questions that every worker gets screened.
	correct := 0
	const n = 400
	for i := 0; i < n; i++ {
		q := pairs[10+i%150]
		if gate.Answer(q) == truth.Match(q) {
			correct++
		}
	}
	banned := gate.Banned()
	for _, w := range banned {
		if w < 2 {
			t.Errorf("diligent worker %d banned", w)
		}
	}
	if len(banned) < 2 {
		t.Errorf("banned = %v, want both adversaries", banned)
	}
	// With adversaries screened out, accuracy approaches the diligent rate.
	if rate := float64(correct) / n; rate < 0.88 {
		t.Errorf("gated accuracy %.3f, want >= 0.88", rate)
	}
	if gate.GoldenQuestionsSpent() == 0 {
		t.Error("no golden questions spent")
	}
}

func TestGoldenGateAllBannedFallsThrough(t *testing.T) {
	truth := record.NewGroundTruth([]record.Pair{record.P(0, 0)})
	p := NewPanel(truth, []WorkerSpec{{Adversarial, 1}}, 13)
	gold := []record.Labeled{{Pair: record.P(0, 0), Match: true}}
	gate := NewGoldenGate(p, gold, 0.75, 1)
	// Must terminate even though every worker fails screening.
	_ = gate.Answer(record.P(0, 0))
}

func TestEffectiveErrorRate(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	truth, pairs := panelTruth(50, rng)
	var gold []record.Labeled
	for _, p := range pairs[:20] {
		gold = append(gold, record.Labeled{Pair: p, Match: truth.Match(p)})
	}
	c := NewSimulated(truth, 0.15, 15)
	rate, margin := EffectiveErrorRate(c, gold, 2000, 0.95)
	if rate < 0.12 || rate > 0.18 {
		t.Errorf("profiled error rate %.3f, want ~0.15", rate)
	}
	if margin <= 0 || margin > 0.05 {
		t.Errorf("margin = %v", margin)
	}
	if r, m := EffectiveErrorRate(c, nil, 100, 0.95); r != 0 || m != 1 {
		t.Error("no gold questions should return (0, 1)")
	}
}
