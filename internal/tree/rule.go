package tree

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a predicate comparison operator.
type Op int

const (
	// LE tests feature <= threshold (the left branch of a split).
	LE Op = iota
	// GT tests feature > threshold (the right branch).
	GT
)

// String renders the operator.
func (o Op) String() string {
	if o == LE {
		return "<="
	}
	return ">"
}

// Predicate is one condition along a root-to-leaf path.
type Predicate struct {
	Feature   int
	Op        Op
	Threshold float64
}

// Holds evaluates the predicate on a feature value.
func (p Predicate) Holds(v float64) bool {
	if p.Op == LE {
		return v <= p.Threshold
	}
	return v > p.Threshold
}

// String renders the predicate with the given name resolver.
func (p Predicate) Render(name func(int) string) string {
	return fmt.Sprintf("%s %s %.4g", name(p.Feature), p.Op, p.Threshold)
}

// Rule is a decision rule extracted from a tree: a conjunction of
// predicates ending in a match / no-match conclusion. Negative rules
// (Positive == false) are the paper's blocking and reduction rules;
// positive rules feed the Difficult Pairs' Locator (§7).
type Rule struct {
	Preds []Predicate
	// Positive is the rule's conclusion: true predicts "match".
	Positive bool
	// LeafPos and LeafNeg are the training counts at the source leaf; they
	// break ties when ranking candidate rules.
	LeafPos, LeafNeg int
}

// Matches reports whether the rule's antecedent holds on vector v — i.e.
// whether the rule "covers" the example (§4.2's cov(R, S) membership).
func (r Rule) Matches(v []float64) bool {
	for _, p := range r.Preds {
		if !p.Holds(v[p.Feature]) {
			return false
		}
	}
	return true
}

// MatchesFunc evaluates coverage with a lazy feature accessor, computing
// features only until a predicate fails. Predicates are ordered cheapest
// feature first by SortPredsByCost, so rule application over A×B
// short-circuits on the cheap tests.
func (r Rule) MatchesFunc(get func(feature int) float64) bool {
	for _, p := range r.Preds {
		if !p.Holds(get(p.Feature)) {
			return false
		}
	}
	return true
}

// Features returns the distinct feature indices the rule references.
func (r Rule) Features() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range r.Preds {
		if !seen[p.Feature] {
			seen[p.Feature] = true
			out = append(out, p.Feature)
		}
	}
	sort.Ints(out)
	return out
}

// Render prints the rule in the paper's Figure 2.c style:
// "(isbn_match <= 0.5) -> No".
func (r Rule) Render(name func(int) string) string {
	parts := make([]string, len(r.Preds))
	for i, p := range r.Preds {
		parts[i] = "(" + p.Render(name) + ")"
	}
	concl := "No"
	if r.Positive {
		concl = "Yes"
	}
	return strings.Join(parts, " and ") + " -> " + concl
}

// Key returns a canonical string identifying the rule's logic, used to
// deduplicate rules extracted from different trees.
func (r Rule) Key() string {
	preds := make([]Predicate, len(r.Preds))
	copy(preds, r.Preds)
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Feature != preds[j].Feature {
			return preds[i].Feature < preds[j].Feature
		}
		if preds[i].Op != preds[j].Op {
			return preds[i].Op < preds[j].Op
		}
		return preds[i].Threshold < preds[j].Threshold
	})
	var b strings.Builder
	for _, p := range preds {
		fmt.Fprintf(&b, "%d%s%.9g;", p.Feature, p.Op, p.Threshold)
	}
	if r.Positive {
		b.WriteByte('+')
	} else {
		b.WriteByte('-')
	}
	return b.String()
}

// SortPredsByCost reorders the rule's predicates so that cheaper features
// are tested first (ties broken by feature index), enabling maximal
// short-circuiting in MatchesFunc.
func (r *Rule) SortPredsByCost(cost func(feature int) float64) {
	sort.SliceStable(r.Preds, func(i, j int) bool {
		ci, cj := cost(r.Preds[i].Feature), cost(r.Preds[j].Feature)
		//corlint:allow float-eq — deterministic sort comparator: exactly equal costs fall through to the feature-index tie-break
		if ci != cj {
			return ci < cj
		}
		return r.Preds[i].Feature < r.Preds[j].Feature
	})
}

// EvalCost returns the worst-case cost of applying the rule to one pair:
// the summed cost of its distinct features (§4.3's tuple-pair cost).
func (r Rule) EvalCost(cost func(feature int) float64) float64 {
	sum := 0.0
	for _, f := range r.Features() {
		sum += cost(f)
	}
	return sum
}

// Rules extracts every root-to-leaf decision rule from the tree (§4.1 step
// 4 generalized to both polarities). Each returned rule's predicate list
// follows the path order from root to leaf.
func (t *Tree) Rules() []Rule {
	var out []Rule
	var walk func(n *Node, path []Predicate)
	walk = func(n *Node, path []Predicate) {
		if n.IsLeaf() {
			preds := make([]Predicate, len(path))
			copy(preds, path)
			out = append(out, Rule{
				Preds:    preds,
				Positive: n.Label,
				LeafPos:  n.Pos,
				LeafNeg:  n.Neg,
			})
			return
		}
		walk(n.Left, append(path, Predicate{Feature: n.Feature, Op: LE, Threshold: n.Threshold}))
		walk(n.Right, append(path, Predicate{Feature: n.Feature, Op: GT, Threshold: n.Threshold}))
	}
	walk(t.Root, nil)
	return out
}
