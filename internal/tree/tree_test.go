package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// xorData is a dataset a depth-2 tree can fit exactly: label = x0>0.5 XOR'd
// nothing — actually label = (x0>0.5 && x1>0.5).
func andData() (X [][]float64, y []bool) {
	for _, a := range []float64{0, 1} {
		for _, b := range []float64{0, 1} {
			for i := 0; i < 5; i++ {
				X = append(X, []float64{a, b})
				y = append(y, a > 0.5 && b > 0.5)
			}
		}
	}
	return
}

func TestGrowFitsSeparableData(t *testing.T) {
	X, y := andData()
	tr := Grow(X, y, nil, Config{})
	for i := range X {
		if got := tr.Predict(X[i]); got != y[i] {
			t.Errorf("Predict(%v) = %v, want %v", X[i], got, y[i])
		}
	}
}

func TestGrowPureLeaf(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []bool{false, false, false}
	tr := Grow(X, y, nil, Config{})
	if !tr.Root.IsLeaf() {
		t.Error("all-negative data should give a single leaf")
	}
	if tr.Root.Label {
		t.Error("leaf label should be negative")
	}
	if tr.NumLeaves() != 1 || tr.Depth() != 0 {
		t.Errorf("leaves=%d depth=%d", tr.NumLeaves(), tr.Depth())
	}
}

func TestGrowMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []bool
	for i := 0; i < 200; i++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X = append(X, v)
		y = append(y, v[0]+v[1]+v[2] > 1.5)
	}
	tr := Grow(X, y, nil, Config{MaxDepth: 2})
	if d := tr.Depth(); d > 2 {
		t.Errorf("depth = %d, want <= 2", d)
	}
}

func TestGrowMinLeaf(t *testing.T) {
	X, y := andData()
	tr := Grow(X, y, nil, Config{MinLeaf: 100})
	if !tr.Root.IsLeaf() {
		t.Error("MinLeaf larger than data should force a single leaf")
	}
}

func TestGrowWithIndices(t *testing.T) {
	X, y := andData()
	// Train on the negatives only.
	var idx []int
	for i, lbl := range y {
		if !lbl {
			idx = append(idx, i)
		}
	}
	tr := Grow(X, y, idx, Config{})
	if !tr.Root.IsLeaf() || tr.Root.Label {
		t.Error("training on all-negative subset should give a negative leaf")
	}
}

func TestGrowDoesNotMutateIdx(t *testing.T) {
	X, y := andData()
	idx := []int{0, 5, 10, 15}
	orig := append([]int(nil), idx...)
	Grow(X, y, idx, Config{})
	for i := range idx {
		if idx[i] != orig[i] {
			t.Fatal("Grow mutated the caller's index slice")
		}
	}
}

func TestPredictFuncLaziness(t *testing.T) {
	X, y := andData()
	tr := Grow(X, y, nil, Config{})
	computed := map[int]bool{}
	got := tr.PredictFunc(func(f int) float64 {
		computed[f] = true
		return 0 // all-low vector: should route negative quickly
	})
	if got {
		t.Error("all-low vector predicted positive")
	}
	if len(computed) > tr.Depth() {
		t.Errorf("computed %d features, expected at most depth %d", len(computed), tr.Depth())
	}
}

func TestCountsRecorded(t *testing.T) {
	X, y := andData()
	tr := Grow(X, y, nil, Config{})
	if tr.Root.Pos != 5 || tr.Root.Neg != 15 {
		t.Errorf("root counts = %d+/%d-, want 5+/15-", tr.Root.Pos, tr.Root.Neg)
	}
}

func TestTreeString(t *testing.T) {
	X, y := andData()
	tr := Grow(X, y, nil, Config{})
	s := tr.String(func(i int) string { return []string{"f0", "f1"}[i] })
	if !strings.Contains(s, "<=") || !strings.Contains(s, "->") {
		t.Errorf("String() = %q missing expected structure", s)
	}
}

func TestRandomFeatureSubsetStillSplits(t *testing.T) {
	X, y := andData()
	tr := Grow(X, y, nil, Config{FeaturesPerSplit: 1, Rand: rand.New(rand.NewSource(7))})
	// With both features needed and only one visible per node, the tree
	// may be imperfect but must be a valid tree.
	if tr.Root == nil {
		t.Fatal("nil root")
	}
}

func TestGiniOf(t *testing.T) {
	if giniOf(0, 0) != 0 {
		t.Error("empty gini should be 0")
	}
	if giniOf(5, 0) != 0 || giniOf(0, 5) != 0 {
		t.Error("pure gini should be 0")
	}
	if g := giniOf(5, 5); g != 0.5 {
		t.Errorf("balanced gini = %v, want 0.5", g)
	}
}

func TestPredictionConsistencyProperty(t *testing.T) {
	// Predict and PredictFunc agree for random vectors on a random tree.
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []bool
	for i := 0; i < 300; i++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		X = append(X, v)
		y = append(y, v[0] > 0.3 && v[2] < 0.7)
	}
	tr := Grow(X, y, nil, Config{})
	f := func(a, b, c, d float64) bool {
		v := []float64{clamp01(a), clamp01(b), clamp01(c), clamp01(d)}
		return tr.Predict(v) == tr.PredictFunc(func(i int) float64 { return v[i] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	if x != x || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
