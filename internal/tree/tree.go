// Package tree implements the CART-style binary decision trees that make up
// Corleone's random forests (§5.1), and the extraction of decision rules —
// root-to-leaf paths — that powers blocking (§4.1 step 4), reduction (§6.2),
// and difficult-pair location (§7).
//
// Trees split on "feature <= threshold" with Gini impurity, choosing each
// split from a random subset of features (the random-forest m parameter).
package tree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of training examples per leaf
	// (default 1).
	MinLeaf int
	// FeaturesPerSplit is the paper's m = log2(n)+1 random features
	// considered at each node; 0 means all features.
	FeaturesPerSplit int
	// Rand drives the per-node feature subsampling. Must be non-nil when
	// FeaturesPerSplit > 0.
	Rand *rand.Rand
}

// Node is one tree node. Leaves have Feature == -1.
type Node struct {
	// Feature is the feature index tested at an internal node, -1 at a leaf.
	Feature int
	// Threshold routes vectors: value <= Threshold goes Left, else Right.
	Threshold float64
	Left      *Node
	Right     *Node
	// Label is the leaf prediction (true = match).
	Label bool
	// Pos and Neg are the training example counts that reached this node.
	Pos, Neg int
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Tree is a grown decision tree.
type Tree struct {
	Root *Node
}

// Grow trains a tree on the rows of X selected by idx (labels in y). X rows
// are feature vectors; idx lets the forest pass bootstrap samples without
// copying. If idx is nil, all rows are used.
func Grow(X [][]float64, y []bool, idx []int, cfg Config) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if idx == nil {
		idx = make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
	}
	own := make([]int, len(idx))
	copy(own, idx)
	g := &grower{X: X, y: y, cfg: cfg}
	return &Tree{Root: g.grow(own, 0)}
}

type grower struct {
	X   [][]float64
	y   []bool
	cfg Config
}

func (g *grower) counts(idx []int) (pos, neg int) {
	for _, i := range idx {
		if g.y[i] {
			pos++
		} else {
			neg++
		}
	}
	return
}

func (g *grower) grow(idx []int, depth int) *Node {
	pos, neg := g.counts(idx)
	leaf := func() *Node {
		return &Node{Feature: -1, Label: pos > neg, Pos: pos, Neg: neg}
	}
	if pos == 0 || neg == 0 || len(idx) < 2*g.cfg.MinLeaf ||
		(g.cfg.MaxDepth > 0 && depth >= g.cfg.MaxDepth) {
		return leaf()
	}
	feat, thr, ok := g.bestSplit(idx, pos, neg)
	if !ok {
		return leaf()
	}
	var left, right []int
	for _, i := range idx {
		if g.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < g.cfg.MinLeaf || len(right) < g.cfg.MinLeaf {
		return leaf()
	}
	return &Node{
		Feature:   feat,
		Threshold: thr,
		Left:      g.grow(left, depth+1),
		Right:     g.grow(right, depth+1),
		Pos:       pos,
		Neg:       neg,
	}
}

// bestSplit searches a random subset of features for the split with the
// lowest weighted Gini impurity. Returns ok=false when no split separates
// the examples.
func (g *grower) bestSplit(idx []int, pos, neg int) (feat int, thr float64, ok bool) {
	nf := len(g.X[0])
	var candidates []int
	if g.cfg.FeaturesPerSplit > 0 && g.cfg.FeaturesPerSplit < nf {
		seen := make(map[int]bool, g.cfg.FeaturesPerSplit)
		for len(seen) < g.cfg.FeaturesPerSplit {
			seen[g.cfg.Rand.Intn(nf)] = true
		}
		for f := range seen {
			candidates = append(candidates, f)
		}
		sort.Ints(candidates)
	} else {
		candidates = make([]int, nf)
		for f := range candidates {
			candidates[f] = f
		}
	}

	type vl struct {
		v   float64
		pos bool
	}
	bestGini := math.Inf(1)
	total := float64(len(idx))
	vals := make([]vl, 0, len(idx))
	for _, f := range candidates {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, vl{v: g.X[i][f], pos: g.y[i]})
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		//corlint:allow float-eq — constant-feature detection over sorted values: an ε-comparison would merge genuinely distinct split points and change the trained tree
		if vals[0].v == vals[len(vals)-1].v {
			continue // constant feature
		}
		lp, ln := 0, 0
		for k := 0; k < len(vals)-1; k++ {
			if vals[k].pos {
				lp++
			} else {
				ln++
			}
			//corlint:allow float-eq — split candidates only exist between runs of exactly equal sorted values; the Gini tie-break depends on this being bitwise
			if vals[k].v == vals[k+1].v {
				continue
			}
			rp, rn := pos-lp, neg-ln
			nl, nr := float64(lp+ln), float64(rp+rn)
			gini := nl/total*giniOf(lp, ln) + nr/total*giniOf(rp, rn)
			if gini < bestGini {
				bestGini = gini
				feat = f
				thr = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	// Reject splits that do not improve on the parent impurity.
	if ok && bestGini >= giniOf(pos, neg)-1e-12 {
		return 0, 0, false
	}
	return feat, thr, ok
}

func giniOf(pos, neg int) float64 {
	n := float64(pos + neg)
	if n == 0 {
		return 0
	}
	p := float64(pos) / n
	return 2 * p * (1 - p)
}

// Predict routes v down the tree and returns the leaf label.
func (t *Tree) Predict(v []float64) bool {
	n := t.Root
	for !n.IsLeaf() {
		if v[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// PredictFunc routes using a feature accessor instead of a full vector,
// computing only the features actually visited. The Blocker uses this to
// apply rules cheaply over A×B.
func (t *Tree) PredictFunc(get func(feature int) float64) bool {
	n := t.Root
	for !n.IsLeaf() {
		if get(n.Feature) <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// NumLeaves counts the leaves.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Depth returns the maximum root-to-leaf depth (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.Root) }

func depthOf(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := depthOf(n.Left), depthOf(n.Right)
	if r > l {
		l = r
	}
	return l + 1
}

// String renders the tree with the given feature-name resolver, in the
// indented style of the paper's Figure 2.
func (t *Tree) String(name func(int) string) string {
	var b strings.Builder
	renderNode(&b, t.Root, name, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, name func(int) string, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		lbl := "No"
		if n.Label {
			lbl = "Yes"
		}
		fmt.Fprintf(b, "%s-> %s (%d+/%d-)\n", indent, lbl, n.Pos, n.Neg)
		return
	}
	fmt.Fprintf(b, "%s[%s <= %.4g]\n", indent, name(n.Feature), n.Threshold)
	renderNode(b, n.Left, name, depth+1)
	renderNode(b, n.Right, name, depth+1)
}
