package tree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GT.String() != ">" {
		t.Error("Op.String wrong")
	}
}

func TestPredicateHolds(t *testing.T) {
	le := Predicate{Feature: 0, Op: LE, Threshold: 0.5}
	gt := Predicate{Feature: 0, Op: GT, Threshold: 0.5}
	if !le.Holds(0.5) || le.Holds(0.6) {
		t.Error("LE boundary wrong")
	}
	if gt.Holds(0.5) || !gt.Holds(0.6) {
		t.Error("GT boundary wrong")
	}
}

func TestRulesPartitionInputSpace(t *testing.T) {
	// Every vector is covered by exactly one rule of a tree — the rules
	// are the root-to-leaf paths, which partition the space.
	X, y := andData()
	tr := Grow(X, y, nil, Config{})
	rules := tr.Rules()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		v := []float64{rng.Float64() * 1.5, rng.Float64() * 1.5}
		covered := 0
		for _, r := range rules {
			if r.Matches(v) {
				covered++
				// The covering rule's conclusion is the tree's prediction.
				if r.Positive != tr.Predict(v) {
					t.Fatalf("rule conclusion disagrees with tree on %v", v)
				}
			}
		}
		if covered != 1 {
			t.Fatalf("vector %v covered by %d rules, want 1", v, covered)
		}
	}
}

func TestRulesLeafCounts(t *testing.T) {
	X, y := andData()
	tr := Grow(X, y, nil, Config{})
	rules := tr.Rules()
	if len(rules) != tr.NumLeaves() {
		t.Errorf("got %d rules for %d leaves", len(rules), tr.NumLeaves())
	}
	totalPos, totalNeg := 0, 0
	for _, r := range rules {
		totalPos += r.LeafPos
		totalNeg += r.LeafNeg
	}
	if totalPos != 5 || totalNeg != 15 {
		t.Errorf("leaf counts sum to %d+/%d-, want 5+/15-", totalPos, totalNeg)
	}
}

func TestRuleMatchesFuncShortCircuits(t *testing.T) {
	r := Rule{Preds: []Predicate{
		{Feature: 0, Op: GT, Threshold: 0.5},
		{Feature: 1, Op: GT, Threshold: 0.5},
	}}
	calls := 0
	got := r.MatchesFunc(func(f int) float64 {
		calls++
		return 0 // first predicate fails
	})
	if got {
		t.Error("rule should not match")
	}
	if calls != 1 {
		t.Errorf("computed %d features, want 1 (short-circuit)", calls)
	}
}

func TestRuleFeatures(t *testing.T) {
	r := Rule{Preds: []Predicate{
		{Feature: 3, Op: LE, Threshold: 1},
		{Feature: 1, Op: GT, Threshold: 0},
		{Feature: 3, Op: GT, Threshold: 0.5},
	}}
	got := r.Features()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Features() = %v, want [1 3]", got)
	}
}

func TestRuleRender(t *testing.T) {
	r := Rule{
		Preds:    []Predicate{{Feature: 0, Op: LE, Threshold: 0.5}},
		Positive: false,
	}
	name := func(i int) string { return "isbn_match" }
	got := r.Render(name)
	if got != "(isbn_match <= 0.5) -> No" {
		t.Errorf("Render = %q", got)
	}
	r.Positive = true
	if !strings.HasSuffix(r.Render(name), "-> Yes") {
		t.Error("positive rule should render Yes")
	}
}

func TestRuleKeyCanonical(t *testing.T) {
	a := Rule{Preds: []Predicate{
		{Feature: 0, Op: LE, Threshold: 0.5},
		{Feature: 1, Op: GT, Threshold: 0.3},
	}}
	b := Rule{Preds: []Predicate{
		{Feature: 1, Op: GT, Threshold: 0.3},
		{Feature: 0, Op: LE, Threshold: 0.5},
	}}
	if a.Key() != b.Key() {
		t.Error("predicate order should not affect Key")
	}
	c := a
	c.Positive = true
	if a.Key() == c.Key() {
		t.Error("conclusion must affect Key")
	}
	d := Rule{Preds: []Predicate{{Feature: 0, Op: GT, Threshold: 0.5}}}
	if a.Key() == d.Key() {
		t.Error("different rules must have different keys")
	}
}

func TestSortPredsByCost(t *testing.T) {
	r := Rule{Preds: []Predicate{
		{Feature: 0, Op: LE, Threshold: 1}, // expensive
		{Feature: 1, Op: LE, Threshold: 1}, // cheap
	}}
	costs := []float64{10, 1}
	r.SortPredsByCost(func(f int) float64 { return costs[f] })
	if r.Preds[0].Feature != 1 {
		t.Errorf("cheapest predicate should come first: %v", r.Preds)
	}
}

func TestEvalCost(t *testing.T) {
	r := Rule{Preds: []Predicate{
		{Feature: 0, Op: LE, Threshold: 1},
		{Feature: 0, Op: GT, Threshold: 0}, // same feature, counted once
		{Feature: 2, Op: LE, Threshold: 1},
	}}
	got := r.EvalCost(func(f int) float64 { return float64(f + 1) })
	if got != 1+3 {
		t.Errorf("EvalCost = %v, want 4", got)
	}
}
