package record

import (
	"strings"
	"unicode"
)

// InferSchema assigns attribute types by inspecting the values of both
// tables — the hands-off path for users who upload CSVs without writing a
// schema (§3's journalist knows their column names, not type systems).
// Heuristics, per column over non-empty values:
//
//   - numeric: at least 80% parse as numbers,
//   - text: the average value has 4+ word tokens (descriptions, titles),
//   - categorical: code-like values — no internal spaces, contain digits,
//     mostly unique (identifiers such as ISBNs, model numbers, phones),
//   - string: everything else (names, cities, venues).
//
// Both tables' values vote, since one side may have sparser data. Types
// are written into both schemas in place.
func InferSchema(a, b *Table) {
	for col := range a.Schema {
		t := inferColumn(collectColumn(a, col), collectColumn(b, col))
		a.Schema[col].Type = t
		if col < len(b.Schema) {
			b.Schema[col].Type = t
		}
	}
}

func collectColumn(t *Table, col int) []string {
	out := make([]string, 0, t.Len())
	for _, row := range t.Rows {
		if col < len(row) && strings.TrimSpace(row[col]) != "" {
			out = append(out, row[col])
		}
	}
	return out
}

func inferColumn(a, b []string) AttrType {
	values := append(append([]string{}, a...), b...)
	if len(values) == 0 {
		return AttrString
	}
	var numeric, codeLike, tokens int
	seen := make(map[string]struct{}, len(values))
	for _, v := range values {
		v = strings.TrimSpace(v)
		if isNumericValue(v) {
			numeric++
		}
		if isCodeLike(v) {
			codeLike++
		}
		tokens += len(strings.Fields(v))
		seen[strings.ToLower(v)] = struct{}{}
	}
	n := len(values)
	switch {
	case float64(numeric)/float64(n) >= 0.8:
		return AttrNumeric
	case float64(tokens)/float64(n) >= 4:
		return AttrText
	case float64(codeLike)/float64(n) >= 0.8 &&
		float64(len(seen))/float64(n) >= 0.5:
		return AttrCategorical
	default:
		return AttrString
	}
}

// isNumericValue accepts plain numbers with optional $, commas, sign.
func isNumericValue(v string) bool {
	v = strings.TrimPrefix(strings.TrimSpace(v), "$")
	v = strings.ReplaceAll(v, ",", "")
	if v == "" {
		return false
	}
	if v[0] == '-' || v[0] == '+' {
		v = v[1:]
	}
	digits, dots := 0, 0
	for _, r := range v {
		switch {
		case unicode.IsDigit(r):
			digits++
		case r == '.':
			dots++
		default:
			return false
		}
	}
	return digits > 0 && dots <= 1
}

// isCodeLike reports identifier-shaped values: single token, contains a
// digit, and mixes digits with letters or punctuation (ISBN-10, phone
// numbers, "KHX1800C9D3K2/4G").
func isCodeLike(v string) bool {
	if v == "" || strings.ContainsAny(v, " \t") {
		return false
	}
	hasDigit, hasOther := false, false
	for _, r := range v {
		if unicode.IsDigit(r) {
			hasDigit = true
		} else {
			hasOther = true
		}
	}
	return hasDigit && (hasOther || len(v) >= 6)
}
