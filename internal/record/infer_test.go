package record

import "testing"

func TestInferSchema(t *testing.T) {
	schema := Schema{
		{Name: "name"}, {Name: "price"}, {Name: "modelno"},
		{Name: "description"}, {Name: "year"},
	}
	a := NewTable("a", schema)
	b := NewTable("b", append(Schema{}, schema...))
	a.Append(Tuple{"kingston hyperx", "49.99", "KHX1800C9", "fast reliable memory kit for desktops", "2013"})
	a.Append(Tuple{"sony camera", "$299.00", "SC900X", "compact zoom lens with image stabilization", "2012"})
	a.Append(Tuple{"dell monitor", "189.50", "DM2412B", "full hd display with adjustable stand included", "2011"})
	b.Append(Tuple{"Kingston HyperX", "48.99", "khx1800c9", "fast memory kit great for desktops", ""})
	b.Append(Tuple{"Sony Cam", "310", "SC900X", "zoom lens camera compact body", "2012"})
	b.Append(Tuple{"", "", "", "", ""})

	InferSchema(a, b)

	want := map[string]AttrType{
		"name":        AttrString,
		"price":       AttrNumeric,
		"modelno":     AttrCategorical,
		"description": AttrText,
		"year":        AttrNumeric,
	}
	for i, attr := range a.Schema {
		if attr.Type != want[attr.Name] {
			t.Errorf("column %q inferred %v, want %v", attr.Name, attr.Type, want[attr.Name])
		}
		if b.Schema[i].Type != attr.Type {
			t.Errorf("column %q: B schema not updated", attr.Name)
		}
	}
}

func TestInferColumnEmpty(t *testing.T) {
	if got := inferColumn(nil, nil); got != AttrString {
		t.Errorf("empty column inferred %v", got)
	}
}

func TestIsCodeLike(t *testing.T) {
	yes := []string{"KHX1800C9D3K2/4G", "978-0262033848", "608-233-1200", "SC900X"}
	no := []string{"kingston hyperx", "", "hello", "new york"}
	for _, v := range yes {
		if !isCodeLike(v) {
			t.Errorf("isCodeLike(%q) = false", v)
		}
	}
	for _, v := range no {
		if isCodeLike(v) {
			t.Errorf("isCodeLike(%q) = true", v)
		}
	}
}

func TestIsNumericValue(t *testing.T) {
	yes := []string{"42", "$19.99", "1,234", "-3.5"}
	no := []string{"", "12a", "1.2.3", "abc", "$"}
	for _, v := range yes {
		if !isNumericValue(v) {
			t.Errorf("isNumericValue(%q) = false", v)
		}
	}
	for _, v := range no {
		if isNumericValue(v) {
			t.Errorf("isNumericValue(%q) = true", v)
		}
	}
}
