package record

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{
		{Name: "name", Type: AttrString},
		{Name: "price", Type: AttrNumeric},
	}
}

func TestAttrTypeString(t *testing.T) {
	cases := map[AttrType]string{
		AttrString:      "string",
		AttrText:        "text",
		AttrNumeric:     "numeric",
		AttrCategorical: "categorical",
		AttrType(99):    "AttrType(99)",
	}
	for at, want := range cases {
		if got := at.String(); got != want {
			t.Errorf("AttrType(%d).String() = %q, want %q", int(at), got, want)
		}
	}
}

func TestSchemaIndex(t *testing.T) {
	s := testSchema()
	if got := s.Index("price"); got != 1 {
		t.Errorf("Index(price) = %d, want 1", got)
	}
	if got := s.Index("missing"); got != -1 {
		t.Errorf("Index(missing) = %d, want -1", got)
	}
}

func TestSchemaNames(t *testing.T) {
	got := testSchema().Names()
	if len(got) != 2 || got[0] != "name" || got[1] != "price" {
		t.Errorf("Names() = %v", got)
	}
}

func TestTableAppendPadsAndTruncates(t *testing.T) {
	tb := NewTable("t", testSchema())
	tb.Append(Tuple{"only-name"})
	tb.Append(Tuple{"a", "1", "extra"})
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Errorf("short row not padded: %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 2 {
		t.Errorf("long row not truncated: %v", tb.Rows[1])
	}
	if tb.Len() != 2 {
		t.Errorf("Len() = %d, want 2", tb.Len())
	}
}

func TestTableValue(t *testing.T) {
	tb := NewTable("t", testSchema())
	tb.Append(Tuple{"widget", "3.50"})
	if got := tb.Value(0, "name"); got != "widget" {
		t.Errorf("Value(name) = %q", got)
	}
	if got := tb.Value(0, "nope"); got != "" {
		t.Errorf("Value(nope) = %q, want empty", got)
	}
}

func TestTableNumeric(t *testing.T) {
	tb := NewTable("t", testSchema())
	tb.Append(Tuple{"a", "1,234.5"})
	tb.Append(Tuple{"b", ""})
	tb.Append(Tuple{"c", "not-a-number"})
	if v, ok := tb.Numeric(0, 1); !ok || v != 1234.5 {
		t.Errorf("Numeric = %v, %v; want 1234.5, true", v, ok)
	}
	if _, ok := tb.Numeric(1, 1); ok {
		t.Error("empty value parsed as numeric")
	}
	if _, ok := tb.Numeric(2, 1); ok {
		t.Error("garbage parsed as numeric")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable("t", testSchema())
	tb.Append(Tuple{"widget, deluxe", "3.50"})
	tb.Append(Tuple{`with "quotes"`, ""})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t2", &buf, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", got.Len(), tb.Len())
	}
	for i := range tb.Rows {
		for j := range tb.Rows[i] {
			if got.Rows[i][j] != tb.Rows[i][j] {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, got.Rows[i][j], tb.Rows[i][j])
			}
		}
	}
	if got.Schema[1].Type != AttrNumeric {
		t.Error("schema hint not applied on read")
	}
}

func TestReadCSVBadHeader(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader(""), nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestPairOrdering(t *testing.T) {
	ps := []Pair{P(2, 1), P(1, 9), P(1, 2), P(2, 0)}
	SortPairs(ps)
	want := []Pair{P(1, 2), P(1, 9), P(2, 0), P(2, 1)}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ps, want)
		}
	}
}

func TestPairLessIsStrictWeakOrder(t *testing.T) {
	f := func(a1, b1, a2, b2 int16) bool {
		p, q := P(int(a1), int(b1)), P(int(a2), int(b2))
		if p == q {
			return !p.Less(q) && !q.Less(p)
		}
		return p.Less(q) != q.Less(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairString(t *testing.T) {
	if got := P(3, 4).String(); got != "(3,4)" {
		t.Errorf("String() = %q", got)
	}
}

func TestPairSet(t *testing.T) {
	s := NewPairSet(P(1, 2), P(3, 4))
	if !s.Has(P(1, 2)) || s.Has(P(2, 1)) {
		t.Error("membership wrong")
	}
	s.Add(P(0, 0))
	sl := s.Slice()
	if len(sl) != 3 || sl[0] != P(0, 0) {
		t.Errorf("Slice() = %v", sl)
	}
}

func TestGroundTruth(t *testing.T) {
	g := NewGroundTruth([]Pair{P(0, 0), P(1, 1)})
	if g.NumMatches() != 2 {
		t.Errorf("NumMatches = %d", g.NumMatches())
	}
	if !g.Match(P(0, 0)) || g.Match(P(0, 1)) {
		t.Error("Match wrong")
	}
	if got := g.CountMatchesIn([]Pair{P(0, 0), P(5, 5), P(1, 1)}); got != 2 {
		t.Errorf("CountMatchesIn = %d, want 2", got)
	}
}

func buildDataset() *Dataset {
	a := NewTable("a", testSchema())
	b := NewTable("b", testSchema())
	for i := 0; i < 4; i++ {
		a.Append(Tuple{"x", "1"})
		b.Append(Tuple{"x", "1"})
	}
	return &Dataset{
		Name:  "d",
		A:     a,
		B:     b,
		Truth: NewGroundTruth([]Pair{P(0, 0), P(1, 1)}),
		Seeds: []Labeled{
			{Pair: P(0, 0), Match: true}, {Pair: P(1, 1), Match: true},
			{Pair: P(0, 1), Match: false}, {Pair: P(1, 0), Match: false},
		},
	}
}

func TestDatasetValidateOK(t *testing.T) {
	if err := buildDataset().Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestDatasetValidateSeedCount(t *testing.T) {
	ds := buildDataset()
	ds.Seeds = ds.Seeds[:3]
	if err := ds.Validate(); err == nil {
		t.Error("expected error for missing seeds")
	}
}

func TestDatasetValidateOutOfRange(t *testing.T) {
	ds := buildDataset()
	ds.Seeds[0].Pair = P(99, 0)
	if err := ds.Validate(); err == nil {
		t.Error("expected error for out-of-range seed")
	}
}

func TestDatasetValidateSchemaMismatch(t *testing.T) {
	ds := buildDataset()
	ds.B.Schema = Schema{{Name: "other", Type: AttrString}, {Name: "price", Type: AttrNumeric}}
	if err := ds.Validate(); err == nil {
		t.Error("expected error for schema name mismatch")
	}
}

func TestDatasetValidateTruthRange(t *testing.T) {
	ds := buildDataset()
	ds.Truth = NewGroundTruth([]Pair{P(0, 99)})
	if err := ds.Validate(); err == nil {
		t.Error("expected error for out-of-range truth pair")
	}
}

func TestDatasetStats(t *testing.T) {
	ds := buildDataset()
	if got := ds.CartesianSize(); got != 16 {
		t.Errorf("CartesianSize = %d, want 16", got)
	}
	if got := ds.PositiveDensity(); got != 2.0/16 {
		t.Errorf("PositiveDensity = %v, want 0.125", got)
	}
}
