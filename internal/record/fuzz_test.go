package record

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzCSVRoundTrip(f *testing.F) {
	f.Add("a", "b", "with, comma", `with "quote"`)
	f.Add("", "", "", "")
	f.Add("line\nbreak", "tab\there", "x", "y")
	f.Fuzz(func(t *testing.T, v1, v2, v3, v4 string) {
		// csv package quotes \r specially (bare \r becomes \r\n on read in
		// some sequences); normalize the expectation the way csv does.
		if strings.ContainsRune(v1+v2+v3+v4, '\r') {
			return
		}
		tb := NewTable("t", Schema{{Name: "c1"}, {Name: "c2"}})
		tb.Append(Tuple{v1, v2})
		tb.Append(Tuple{v3, v4})
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadCSV("t", &buf, nil)
		if err != nil {
			t.Fatalf("read back our own output: %v", err)
		}
		if got.Len() != 2 {
			t.Fatalf("rows = %d", got.Len())
		}
		want := [][]string{{v1, v2}, {v3, v4}}
		for i := range want {
			for j := range want[i] {
				if got.Rows[i][j] != want[i][j] {
					t.Fatalf("cell (%d,%d) = %q, want %q", i, j, got.Rows[i][j], want[i][j])
				}
			}
		}
	})
}

func FuzzReadCSVNeverPanics(f *testing.F) {
	f.Add("h1,h2\na,b\n")
	f.Add("")
	f.Add("\"unterminated")
	f.Add("a,b,c\n1\n1,2,3,4\n")
	f.Fuzz(func(t *testing.T, data string) {
		tbl, err := ReadCSV("t", strings.NewReader(data), nil)
		if err != nil {
			return // malformed input may error, never panic
		}
		// Parsed tables are structurally sound: rows match schema width.
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Schema) {
				t.Fatalf("row width %d != schema %d", len(row), len(tbl.Schema))
			}
		}
	})
}
