// Package record defines the relational substrate Corleone matches over:
// tables of flat tuples with typed attributes, and tuple pairs drawn from
// the Cartesian product of two tables.
//
// The paper's setting (§2) is matching all pairs (a ∈ A, b ∈ B) of two
// relational tables that refer to the same real-world entity. Everything
// downstream — feature vectors, blocking rules, crowd questions — is keyed
// by Pair values that index into the two tables.
package record

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// AttrType classifies an attribute so the feature library can pick
// appropriate similarity functions (e.g., no TF/IDF on numbers, §5.1).
type AttrType int

const (
	// AttrString is a short string such as a name, brand, or city.
	AttrString AttrType = iota
	// AttrText is a long free-text field such as a product description.
	AttrText
	// AttrNumeric is a numeric field such as price, pages, or year.
	AttrNumeric
	// AttrCategorical is a low-cardinality code such as an ISBN or model
	// number, best compared by exact or near-exact match.
	AttrCategorical
)

// String returns the lowercase name of the attribute type.
func (t AttrType) String() string {
	switch t {
	case AttrString:
		return "string"
	case AttrText:
		return "text"
	case AttrNumeric:
		return "numeric"
	case AttrCategorical:
		return "categorical"
	default:
		return fmt.Sprintf("AttrType(%d)", int(t))
	}
}

// Attribute is one column of a table schema.
type Attribute struct {
	Name string
	Type AttrType
}

// Schema is an ordered list of attributes shared by both input tables.
// Corleone assumes the user has aligned the two tables to a common schema
// (the paper's datasets all come pre-aligned).
type Schema []Attribute

// Index returns the position of the named attribute, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name
	}
	return out
}

// Tuple is one row: attribute values in schema order. Empty string means
// a missing value.
type Tuple []string

// Table is a named relation with a schema and rows.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Tuple
}

// NewTable returns an empty table with the given name and schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Append adds a row, padding or truncating it to the schema width.
func (t *Table) Append(row Tuple) {
	switch {
	case len(row) < len(t.Schema):
		padded := make(Tuple, len(t.Schema))
		copy(padded, row)
		row = padded
	case len(row) > len(t.Schema):
		row = row[:len(t.Schema)]
	}
	t.Rows = append(t.Rows, row)
}

// Value returns the value of the named attribute in row i, or "" if the
// attribute does not exist.
func (t *Table) Value(i int, attr string) string {
	j := t.Schema.Index(attr)
	if j < 0 {
		return ""
	}
	return t.Rows[i][j]
}

// Numeric parses the value at (row, col) as a float. The second return is
// false for missing or unparseable values.
func (t *Table) Numeric(row, col int) (float64, bool) {
	v := strings.TrimSpace(t.Rows[row][col])
	if v == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.ReplaceAll(v, ",", ""), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// WriteCSV writes the table (header row first) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table from CSV. The first row must be a header naming the
// attributes; types are taken from the supplied schema when attribute names
// match, and default to AttrString otherwise.
func ReadCSV(name string, r io.Reader, hint Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		h = strings.TrimSpace(h)
		schema[i] = Attribute{Name: h, Type: AttrString}
		if j := hint.Index(h); j >= 0 {
			schema[i].Type = hint[j].Type
		}
	}
	t := NewTable(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read row: %w", err)
		}
		t.Append(Tuple(rec))
	}
	return t, nil
}

// Pair identifies a candidate match: row A of table A and row B of table B.
type Pair struct {
	A, B int32
}

// P is a convenience constructor for a Pair.
func P(a, b int) Pair { return Pair{A: int32(a), B: int32(b)} }

// Less orders pairs lexicographically; used for deterministic iteration.
func (p Pair) Less(q Pair) bool {
	if p.A != q.A {
		return p.A < q.A
	}
	return p.B < q.B
}

// String renders the pair as "(a,b)".
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.A, p.B) }

// SortPairs sorts a pair slice in place, lexicographically.
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

// PairSet is a set of pairs with O(1) membership.
type PairSet map[Pair]struct{}

// NewPairSet builds a set from the given pairs.
func NewPairSet(ps ...Pair) PairSet {
	s := make(PairSet, len(ps))
	for _, p := range ps {
		s[p] = struct{}{}
	}
	return s
}

// Add inserts p.
func (s PairSet) Add(p Pair) { s[p] = struct{}{} }

// Has reports membership.
func (s PairSet) Has(p Pair) bool { _, ok := s[p]; return ok }

// Slice returns the members in sorted order.
func (s PairSet) Slice() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	SortPairs(out)
	return out
}

// Labeled couples a pair with a boolean match label (true = the two tuples
// refer to the same entity).
type Labeled struct {
	Pair  Pair
	Match bool
}

// GroundTruth is the gold standard for a dataset: the set of true matches.
// The simulated crowd and all true-accuracy computations consult it.
type GroundTruth struct {
	matches PairSet
}

// NewGroundTruth builds a gold standard from the true match pairs.
func NewGroundTruth(matches []Pair) *GroundTruth {
	return &GroundTruth{matches: NewPairSet(matches...)}
}

// Match reports whether p is a true match.
func (g *GroundTruth) Match(p Pair) bool { return g.matches.Has(p) }

// NumMatches returns the number of true matches.
func (g *GroundTruth) NumMatches() int { return len(g.matches) }

// Matches returns the true match pairs in sorted order.
func (g *GroundTruth) Matches() []Pair { return g.matches.Slice() }

// CountMatchesIn returns how many of the given pairs are true matches.
func (g *GroundTruth) CountMatchesIn(ps []Pair) int {
	n := 0
	for _, p := range ps {
		if g.Match(p) {
			n++
		}
	}
	return n
}

// Dataset bundles everything a Corleone run needs: two tables, the gold
// standard (used only by the simulated crowd and for reporting true
// accuracy), the matching instruction shown to the crowd, and the four
// user-supplied seed examples (two positive, two negative) from §3.
type Dataset struct {
	Name        string
	A, B        *Table
	Truth       *GroundTruth
	Instruction string
	Seeds       []Labeled
}

// CartesianSize returns |A| * |B|.
func (d *Dataset) CartesianSize() int64 {
	return int64(d.A.Len()) * int64(d.B.Len())
}

// PositiveDensity returns the fraction of A×B that are true matches.
func (d *Dataset) PositiveDensity() float64 {
	n := d.CartesianSize()
	if n == 0 {
		return 0
	}
	return float64(d.Truth.NumMatches()) / float64(n)
}

// Validate checks structural sanity: aligned schemas, in-range seeds and
// ground-truth pairs, and the required 2+2 seed examples.
func (d *Dataset) Validate() error {
	if d.A == nil || d.B == nil {
		return fmt.Errorf("dataset %q: missing table", d.Name)
	}
	if len(d.A.Schema) != len(d.B.Schema) {
		return fmt.Errorf("dataset %q: schema width mismatch %d vs %d",
			d.Name, len(d.A.Schema), len(d.B.Schema))
	}
	for i := range d.A.Schema {
		if d.A.Schema[i].Name != d.B.Schema[i].Name {
			return fmt.Errorf("dataset %q: attribute %d named %q in A but %q in B",
				d.Name, i, d.A.Schema[i].Name, d.B.Schema[i].Name)
		}
	}
	var pos, neg int
	for _, s := range d.Seeds {
		if err := d.checkPair(s.Pair); err != nil {
			return fmt.Errorf("seed %v: %w", s.Pair, err)
		}
		if s.Match {
			pos++
		} else {
			neg++
		}
	}
	if pos < 2 || neg < 2 {
		return fmt.Errorf("dataset %q: need at least 2 positive and 2 negative seeds, have %d/%d",
			d.Name, pos, neg)
	}
	if d.Truth != nil {
		for _, p := range d.Truth.Matches() {
			if err := d.checkPair(p); err != nil {
				return fmt.Errorf("ground truth %v: %w", p, err)
			}
		}
	}
	return nil
}

func (d *Dataset) checkPair(p Pair) error {
	if int(p.A) < 0 || int(p.A) >= d.A.Len() {
		return fmt.Errorf("row %d out of range for table A (len %d)", p.A, d.A.Len())
	}
	if int(p.B) < 0 || int(p.B) >= d.B.Len() {
		return fmt.Errorf("row %d out of range for table B (len %d)", p.B, d.B.Len())
	}
	return nil
}
