package active

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/corleone-em/corleone/internal/crowd"
)

// TestLearnIndependentOfParallelism pins the deterministic-parallelism
// contract end to end: the same Learn call must produce bit-identical
// confidences, training sets, and model selection whether the forest
// training and pool scoring run on one core or many.
func TestLearnIndependentOfParallelism(t *testing.T) {
	run := func() (*Result, error) {
		pairs, X, seeds, seedX, truth := pool(3000, 0.05, 13)
		runner := crowd.NewRunner(crowd.NewSimulated(truth, 0.05, 17), 0.01)
		cfg := Defaults()
		cfg.Seed = 5
		cfg.MaxIterations = 12
		return Learn(runner, pairs, X, seeds, seedX, cfg)
	}

	prev := runtime.GOMAXPROCS(1)
	serial, errS := run()
	runtime.GOMAXPROCS(prev)
	parallel, errP := run()

	if errS != nil || errP != nil {
		t.Fatalf("errors: serial=%v parallel=%v", errS, errP)
	}
	if !reflect.DeepEqual(serial.Trace, parallel.Trace) {
		t.Errorf("traces differ:\nserial:   %+v\nparallel: %+v", serial.Trace, parallel.Trace)
	}
	if !reflect.DeepEqual(serial.Training, parallel.Training) {
		t.Error("training sets differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(serial.Forest, parallel.Forest) {
		t.Error("selected forests differ between serial and parallel runs")
	}
}
