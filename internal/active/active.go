// Package active implements Corleone's crowdsourced active learning loop
// (§5.2–5.3): train a random forest, pick the most informative examples by
// prediction entropy, have the crowd label them, retrain — monitoring the
// forest's confidence on a held-aside set and stopping when the confidence
// converges, reaches a near-absolute value, or degrades past its peak.
package active

import (
	"fmt"
	"math/rand"

	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/forest"
	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/stats"
)

// Config carries the §5 parameters.
type Config struct {
	// Forest configures the underlying random forest learner.
	Forest forest.Config
	// BatchQ is q, the examples labeled per iteration (paper: 20).
	BatchQ int
	// PoolP is p, the entropy-ranked pool the batch is sampled from
	// (paper: 100).
	PoolP int
	// MonitorFrac is the fraction of C set aside as the monitoring set V
	// (paper: 3%).
	MonitorFrac float64
	// SmoothW is the smoothing window w over confidence values (paper: 5).
	SmoothW int
	// Eps is the ε of the stopping patterns (paper: 0.01).
	Eps float64
	// NConverged, NHigh, NDegrade are the pattern window lengths
	// (paper: 20, 3, 15).
	NConverged int
	NHigh      int
	NDegrade   int
	// MaxIterations is a safety cap on training iterations.
	MaxIterations int
	// Policy is the voting scheme for training labels. The paper found
	// 2+1 adequate for training data (§8.2).
	Policy crowd.Policy
	// Seed drives example selection and the monitor split.
	Seed int64
	// StopEarly, when non-nil, is polled each iteration; returning true
	// aborts training (used by budget-capped runs).
	StopEarly func() bool
	// Strategy selects examples for labeling: StrategyEntropy (default)
	// is the paper's §5.2 informativeness sampling; StrategyRandom is the
	// ablation baseline that draws uniformly from the pool.
	Strategy Strategy
}

// Strategy names an example-selection policy.
type Strategy int

const (
	// StrategyEntropy is the paper's scheme: top-p by prediction entropy,
	// then entropy-weighted sampling of q for diversity.
	StrategyEntropy Strategy = iota
	// StrategyRandom draws the batch uniformly — what a developer's
	// random training sample does (Table 2's Baseline 1/2 regime).
	StrategyRandom
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyRandom {
		return "random"
	}
	return "entropy"
}

// Defaults returns the paper's configuration.
func Defaults() Config {
	return Config{
		Forest:        forest.Defaults(),
		BatchQ:        20,
		PoolP:         100,
		MonitorFrac:   0.03,
		SmoothW:       5,
		Eps:           0.01,
		NConverged:    20,
		NHigh:         3,
		NDegrade:      15,
		MaxIterations: 150,
		Policy:        crowd.Policy21,
		Seed:          1,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.BatchQ <= 0 {
		c.BatchQ = d.BatchQ
	}
	if c.PoolP <= 0 {
		c.PoolP = d.PoolP
	}
	if c.MonitorFrac <= 0 {
		c.MonitorFrac = d.MonitorFrac
	}
	if c.SmoothW <= 0 {
		c.SmoothW = d.SmoothW
	}
	if c.Eps <= 0 {
		c.Eps = d.Eps
	}
	if c.NConverged <= 0 {
		c.NConverged = d.NConverged
	}
	if c.NHigh <= 0 {
		c.NHigh = d.NHigh
	}
	if c.NDegrade <= 0 {
		c.NDegrade = d.NDegrade
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = d.MaxIterations
	}
	return c
}

// StopReason records why training stopped.
type StopReason string

const (
	// StopConverged: confidence stabilized within a 2ε band for
	// NConverged iterations (Figure 3.a).
	StopConverged StopReason = "converged"
	// StopNearAbsolute: confidence at least 1-ε for NHigh iterations
	// (Figure 3.b).
	StopNearAbsolute StopReason = "near-absolute"
	// StopDegrading: confidence peaked and then degraded across two
	// NDegrade windows; the peak classifier is returned.
	StopDegrading StopReason = "degrading"
	// StopPoolExhausted: no unlabeled examples remain to select.
	StopPoolExhausted StopReason = "pool-exhausted"
	// StopMaxIterations: the safety cap was reached.
	StopMaxIterations StopReason = "max-iterations"
	// StopBudget: the caller's StopEarly hook fired.
	StopBudget StopReason = "budget"
)

// Trace records the confidence series for Figure 3 and run diagnostics.
type Trace struct {
	// Confidence is conf(V) per iteration, unsmoothed.
	Confidence []float64
	// Smoothed is the final smoothed series.
	Smoothed []float64
	// Reason is why training stopped.
	Reason StopReason
	// Iterations is the number of training iterations (batches consumed).
	Iterations int
	// PickedIteration is the iteration whose classifier was returned
	// (differs from Iterations when the degrading pattern rolls back).
	PickedIteration int
	// LabelsAcquired is the number of training examples obtained from the
	// crowd (cache hits included).
	LabelsAcquired int
}

// Result is the outcome of an active learning run.
type Result struct {
	// Forest is the selected classifier (the peak-confidence one when the
	// degrading pattern fired).
	Forest *forest.Forest
	// Training is every labeled example used, seeds included.
	Training []record.Labeled
	// Trace is the diagnostic record.
	Trace Trace
}

// Learn runs crowdsourced active learning over the candidate pool. pairs
// and X are the pool C and its feature vectors (aligned). seeds are the
// initially labeled examples with their vectors seedX; they may or may not
// belong to C.
func Learn(runner *crowd.Runner, pairs []record.Pair, X [][]float64,
	seeds []record.Labeled, seedX [][]float64, cfg Config) (*Result, error) {

	cfg = cfg.withDefaults()
	if len(pairs) != len(X) {
		return nil, fmt.Errorf("active: %d pairs but %d vectors", len(pairs), len(X))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("active: no seed examples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Set aside the monitoring set V (§5.3): a random MonitorFrac of C,
	// excluded from example selection.
	nMon := int(float64(len(pairs)) * cfg.MonitorFrac)
	if nMon < 1 {
		nMon = 1
	}
	if nMon > len(pairs) {
		nMon = len(pairs)
	}
	monIdx := stats.SampleIndices(rng, len(pairs), nMon)
	inMonitor := make([]bool, len(pairs))
	V := make([][]float64, 0, nMon)
	for _, i := range monIdx {
		inMonitor[i] = true
		V = append(V, X[i])
	}

	// Training state. pairIdx maps a pool pair to its index so batch
	// results can be marked consumed.
	pairIdx := make(map[record.Pair]int, len(pairs))
	for i, p := range pairs {
		pairIdx[p] = i
	}
	trainX := make([][]float64, 0, len(seeds)+cfg.MaxIterations*cfg.BatchQ)
	trainY := make([]bool, 0, cap(trainX))
	training := make([]record.Labeled, 0, cap(trainX))
	consumed := make([]bool, len(pairs))
	addExample := func(l record.Labeled, v []float64) {
		trainX = append(trainX, v)
		trainY = append(trainY, l.Match)
		training = append(training, l)
		if i, ok := pairIdx[l.Pair]; ok {
			consumed[i] = true
		}
	}
	for i, s := range seeds {
		addExample(s, seedX[i])
	}

	var (
		trace   Trace
		forests []*forest.Forest
		r       ranker
	)
	fcfg := cfg.Forest
	baseSeed := cfg.Seed

	for iter := 0; ; iter++ {
		fcfg.Seed = baseSeed + int64(iter)*7919
		f := forest.Train(trainX, trainY, fcfg)
		forests = append(forests, f)
		trace.Confidence = append(trace.Confidence, r.sc.MeanConfidence(f, V))
		trace.Iterations = iter + 1

		if reason, ok := shouldStop(trace.Confidence, cfg); ok {
			trace.Reason = reason
			break
		}
		if cfg.StopEarly != nil && cfg.StopEarly() {
			trace.Reason = StopBudget
			break
		}
		if iter+1 >= cfg.MaxIterations {
			trace.Reason = StopMaxIterations
			break
		}

		// Select the q-example batch: top p by entropy, then
		// entropy-weighted sampling for diversity (§5.2).
		batch := r.selectBatch(rng, f, X, consumed, inMonitor, cfg)
		if len(batch) == 0 {
			trace.Reason = StopPoolExhausted
			break
		}
		req := make([]record.Pair, len(batch))
		for i, bi := range batch {
			req[i] = pairs[bi]
		}
		labeled := runner.LabelTrainingBatch(req, cfg.Policy)
		if len(labeled) == 0 {
			trace.Reason = StopPoolExhausted
			break
		}
		for _, l := range labeled {
			addExample(l, X[pairIdx[l.Pair]])
			trace.LabelsAcquired++
		}
	}

	trace.Smoothed = stats.SmoothWindow(trace.Confidence, cfg.SmoothW)
	picked := len(forests) - 1
	if trace.Reason == StopDegrading {
		// §5.3: select the last classifier before the degrade — the one at
		// the smoothed-confidence peak.
		best := 0
		for i, v := range trace.Smoothed {
			if v > trace.Smoothed[best] {
				best = i
			}
		}
		picked = best
	}
	trace.PickedIteration = picked + 1
	return &Result{Forest: forests[picked], Training: training, Trace: trace}, nil
}

type cand struct {
	idx     int
	entropy float64
}

// ranker is the reusable workspace for example selection (§5.2) and
// monitoring-set scoring (§5.3). Its buffers — the batched forest scorer,
// the eligible-pool collections, the entropy scratch, and the weighted
// sampler — grow to the pool size on the first iteration and are retained,
// so ranking a candidate block is zero-alloc in steady state even though
// the loop re-scores the entire pool after every retrain. The zero value
// is ready to use.
type ranker struct {
	sc      forest.Scorer
	sampler stats.WeightedSampler
	pool    []int       // eligible pool indices, rebuilt each call
	vecs    [][]float64 // feature vectors aligned with pool
	ents    []float64   // batched entropies aligned with pool
	cands   []cand      // ranking records for the partial sort
	weights []float64   // top-p entropies for weighted sampling
	perm    []int       // SampleIndicesInto scratch (random strategy)
	out     []int       // selected pool indices, valid until next call
}

// selectBatch returns pool indices for the next labeling batch. The result
// aliases the ranker's buffers and is valid until the next call.
func (r *ranker) selectBatch(rng *rand.Rand, f *forest.Forest, X [][]float64,
	consumed, inMonitor []bool, cfg Config) []int {

	pool := r.pool[:0]
	if cfg.Strategy == StrategyRandom {
		for i := range X {
			if !consumed[i] && !inMonitor[i] {
				pool = append(pool, i)
			}
		}
		r.pool = pool
		if cap(r.perm) < len(pool) {
			r.perm = make([]int, len(pool))
		}
		out := r.out[:0]
		for _, j := range stats.SampleIndicesInto(rng, len(pool), cfg.BatchQ, r.perm) {
			out = append(out, pool[j])
		}
		r.out = out
		return out
	}

	// Collect the eligible pool serially (cheap, preserves index order),
	// then score it through the batched SoA path: entropies land at their
	// own slots, so the ranking input is identical to the per-vector loop
	// this replaced, at a fraction of the walk cost and without per-call
	// slices.
	vecs := r.vecs[:0]
	for i := range X {
		if consumed[i] || inMonitor[i] {
			continue
		}
		pool = append(pool, i)
		vecs = append(vecs, X[i])
	}
	r.pool, r.vecs = pool, vecs
	if len(pool) == 0 {
		return nil
	}
	if cap(r.ents) < len(pool) {
		r.ents = make([]float64, len(pool))
	}
	ents := r.sc.EntropiesInto(f, vecs, r.ents[:len(pool)])
	cands := r.cands[:0]
	for j, i := range pool {
		cands = append(cands, cand{idx: i, entropy: ents[j]})
	}
	r.cands = cands
	// Top p by entropy. Partial selection sort is fine at p=100.
	p := cfg.PoolP
	if p > len(cands) {
		p = len(cands)
	}
	partialSortByEntropy(cands, p)
	top := cands[:p]
	if cap(r.weights) < p {
		r.weights = make([]float64, p)
	}
	weights := r.weights[:p]
	for i, c := range top {
		weights[i] = c.entropy
	}
	picked := r.sampler.Sample(rng, weights, cfg.BatchQ)
	out := r.out[:0]
	for _, j := range picked {
		out = append(out, top[j].idx)
	}
	r.out = out
	return out
}

// partialSortByEntropy moves the k highest-entropy candidates to the front
// (descending), leaving the rest unordered.
func partialSortByEntropy(cs []cand, k int) {
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(cs); j++ {
			if cs[j].entropy > cs[best].entropy ||
				//corlint:allow float-eq — deterministic tie-break: exactly equal entropies must fall through to the index comparison, identically on every run
				(cs[j].entropy == cs[best].entropy && cs[j].idx < cs[best].idx) {
				best = j
			}
		}
		cs[i], cs[best] = cs[best], cs[i]
	}
}

// shouldStop checks the three §5.3 stopping patterns over the smoothed
// confidence series.
func shouldStop(confidence []float64, cfg Config) (StopReason, bool) {
	s := stats.SmoothWindow(confidence, cfg.SmoothW)
	n := len(s)

	// Near-absolute confidence: last NHigh values >= 1-ε.
	if n >= cfg.NHigh {
		high := true
		for _, v := range s[n-cfg.NHigh:] {
			if v < 1-cfg.Eps {
				high = false
				break
			}
		}
		if high {
			return StopNearAbsolute, true
		}
	}

	// Converged confidence: last NConverged values within a 2ε band.
	if n >= cfg.NConverged {
		win := s[n-cfg.NConverged:]
		lo, hi := win[0], win[0]
		for _, v := range win {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo <= 2*cfg.Eps {
			return StopConverged, true
		}
	}

	// Degrading confidence: max of the earlier NDegrade window exceeds the
	// max of the later one by more than ε.
	if n >= 2*cfg.NDegrade {
		w1 := s[n-2*cfg.NDegrade : n-cfg.NDegrade]
		w2 := s[n-cfg.NDegrade:]
		if stats.Max(w1) > stats.Max(w2)+cfg.Eps {
			return StopDegrading, true
		}
	}
	return "", false
}
