package active

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/corleone-em/corleone/internal/forest"
)

// rankerFixture builds a trained forest and an eligibility mask over a
// synthetic pool, the inputs selectBatch consumes every iteration.
func rankerFixture(n int) (f *forest.Forest, X [][]float64, consumed, inMonitor []bool) {
	rng := rand.New(rand.NewSource(11))
	X = make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = X[i][0] > 0.5
	}
	f = forest.Train(X[:200], y[:200], forest.Defaults())
	consumed = make([]bool, n)
	inMonitor = make([]bool, n)
	for i := 0; i < n; i += 37 {
		consumed[i] = true
	}
	return f, X, consumed, inMonitor
}

// TestRankerZeroAllocSteadyState pins the per-iteration ranking cost: once
// the ranker's buffers have grown to the pool, selecting a batch — pool
// collection, batched entropy scoring, partial sort, weighted sampling —
// allocates nothing, for both selection strategies. par.For only hands out
// goroutines above GOMAXPROCS 1, so the assertion runs on the inline path.
func TestRankerZeroAllocSteadyState(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	f, X, consumed, inMonitor := rankerFixture(2000)
	rng := rand.New(rand.NewSource(3))
	cfg := Defaults()

	var r ranker
	r.selectBatch(rng, f, X, consumed, inMonitor, cfg) // warm the buffers
	if allocs := testing.AllocsPerRun(100, func() {
		r.selectBatch(rng, f, X, consumed, inMonitor, cfg)
	}); allocs != 0 {
		t.Errorf("entropy selectBatch steady state allocates %.1f per op, want 0", allocs)
	}

	rcfg := cfg
	rcfg.Strategy = StrategyRandom
	r.selectBatch(rng, f, X, consumed, inMonitor, rcfg)
	if allocs := testing.AllocsPerRun(100, func() {
		r.selectBatch(rng, f, X, consumed, inMonitor, rcfg)
	}); allocs != 0 {
		t.Errorf("random selectBatch steady state allocates %.1f per op, want 0", allocs)
	}
}

// TestRankerMatchesPointwiseScoring pins the batched ranking input: the
// entropies the ranker feeds the partial sort are bit-identical to scoring
// each eligible candidate through the single-vector path.
func TestRankerMatchesPointwiseScoring(t *testing.T) {
	f, X, consumed, inMonitor := rankerFixture(700)
	cfg := Defaults()
	var r ranker
	r.selectBatch(rand.New(rand.NewSource(5)), f, X, consumed, inMonitor, cfg)
	for j, i := range r.pool {
		if consumed[i] || inMonitor[i] {
			t.Fatalf("pool contains ineligible index %d", i)
		}
		if want := f.Entropy(X[i]); r.ents[j] != want {
			t.Fatalf("batched entropy[%d] = %v, single-vector = %v", i, r.ents[j], want)
		}
	}
}

// BenchmarkSelectBatch measures one iteration of §5.2 example selection
// over a 5000-candidate pool — the ranking hot path Learn runs after every
// retrain. Zero-alloc in steady state at GOMAXPROCS=1.
func BenchmarkSelectBatch(b *testing.B) {
	f, X, consumed, inMonitor := rankerFixture(5000)
	rng := rand.New(rand.NewSource(3))
	cfg := Defaults()
	var r ranker
	var batch []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch = r.selectBatch(rng, f, X, consumed, inMonitor, cfg)
	}
	_ = batch
}
