package active

import (
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/record"
)

// pool builds a candidate pool of n single-feature examples where x > 0.5
// means match, with the given match fraction, plus 2+2 seeds.
func pool(n int, matchFrac float64, seed int64) (pairs []record.Pair, X [][]float64,
	seeds []record.Labeled, seedX [][]float64, truth *record.GroundTruth) {

	rng := rand.New(rand.NewSource(seed))
	var matches []record.Pair
	for i := 0; i < n; i++ {
		p := record.P(i, i)
		pairs = append(pairs, p)
		if rng.Float64() < matchFrac {
			X = append(X, []float64{0.6 + 0.4*rng.Float64()})
			matches = append(matches, p)
		} else {
			X = append(X, []float64{0.5 * rng.Float64()})
		}
	}
	truth = record.NewGroundTruth(matches)
	seeds = []record.Labeled{
		{Pair: record.P(n, n), Match: true},
		{Pair: record.P(n+1, n+1), Match: true},
		{Pair: record.P(n+2, n+2), Match: false},
		{Pair: record.P(n+3, n+3), Match: false},
	}
	seedX = [][]float64{{0.9}, {0.8}, {0.1}, {0.2}}
	return
}

func TestLearnSeparablePool(t *testing.T) {
	pairs, X, seeds, seedX, truth := pool(2000, 0.05, 1)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	cfg := Defaults()
	cfg.Seed = 3
	res, err := Learn(runner, pairs, X, seeds, seedX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The learned forest should classify the pool nearly perfectly.
	errs := 0
	for i, v := range X {
		if res.Forest.Predict(v) != truth.Match(pairs[i]) {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(X)); frac > 0.02 {
		t.Errorf("pool error rate %.3f, want <= 0.02", frac)
	}
	if res.Trace.Reason == "" {
		t.Error("missing stop reason")
	}
	if res.Trace.Iterations < 1 {
		t.Error("no iterations recorded")
	}
	if len(res.Trace.Confidence) != res.Trace.Iterations {
		t.Error("confidence series length != iterations")
	}
	if len(res.Training) < len(seeds) {
		t.Error("training set lost the seeds")
	}
}

func TestLearnErrors(t *testing.T) {
	pairs, X, seeds, seedX, _ := pool(50, 0.1, 2)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: record.NewGroundTruth(nil)}, 0.01)
	if _, err := Learn(runner, pairs, X[:10], seeds, seedX, Defaults()); err == nil {
		t.Error("mismatched pairs/vectors should error")
	}
	if _, err := Learn(runner, pairs, X, nil, nil, Defaults()); err == nil {
		t.Error("missing seeds should error")
	}
}

func TestLearnStopEarly(t *testing.T) {
	pairs, X, seeds, seedX, truth := pool(2000, 0.05, 3)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	cfg := Defaults()
	calls := 0
	cfg.StopEarly = func() bool { calls++; return calls > 2 }
	res, err := Learn(runner, pairs, X, seeds, seedX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Reason != StopBudget {
		t.Errorf("reason = %q, want %q", res.Trace.Reason, StopBudget)
	}
}

func TestLearnMaxIterations(t *testing.T) {
	pairs, X, seeds, seedX, truth := pool(5000, 0.5, 4)
	// A noisy crowd keeps confidence moving; a tiny cap forces the stop.
	runner := crowd.NewRunner(crowd.NewSimulated(truth, 0.4, 9), 0.01)
	cfg := Defaults()
	cfg.MaxIterations = 3
	cfg.NConverged = 1000
	cfg.NHigh = 1000
	cfg.NDegrade = 1000
	res, err := Learn(runner, pairs, X, seeds, seedX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Reason != StopMaxIterations {
		t.Errorf("reason = %q, want max-iterations", res.Trace.Reason)
	}
	if res.Trace.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", res.Trace.Iterations)
	}
}

func TestLearnPoolExhausted(t *testing.T) {
	pairs, X, seeds, seedX, truth := pool(30, 0.3, 5)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	cfg := Defaults()
	cfg.NConverged = 1000 // disable the other stops
	cfg.NHigh = 1000
	cfg.NDegrade = 1000
	res, err := Learn(runner, pairs, X, seeds, seedX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Reason != StopPoolExhausted && res.Trace.Reason != StopMaxIterations {
		t.Errorf("reason = %q, want pool-exhausted", res.Trace.Reason)
	}
}

func TestShouldStopNearAbsolute(t *testing.T) {
	cfg := Defaults()
	conf := []float64{0.5}
	for i := 0; i < 10; i++ {
		conf = append(conf, 0.997) // long high tail survives smoothing
	}
	reason, ok := shouldStop(conf, cfg)
	if !ok || reason != StopNearAbsolute {
		t.Errorf("got %q,%v want near-absolute", reason, ok)
	}
}

func TestShouldStopConverged(t *testing.T) {
	cfg := Defaults()
	conf := make([]float64, 25)
	for i := range conf {
		conf[i] = 0.8 // flat, but below 1-eps
	}
	reason, ok := shouldStop(conf, cfg)
	if !ok || reason != StopConverged {
		t.Errorf("got %q,%v want converged", reason, ok)
	}
	// A drifting series must not converge.
	for i := range conf {
		conf[i] = 0.5 + 0.02*float64(i)
	}
	if _, ok := shouldStop(conf, cfg); ok {
		t.Error("drifting series should not stop")
	}
}

func TestShouldStopDegrading(t *testing.T) {
	cfg := Defaults()
	cfg.NConverged = 1000 // isolate the degrading pattern
	cfg.NHigh = 1000
	var conf []float64
	for i := 0; i < 15; i++ {
		conf = append(conf, 0.5+0.027*float64(i)) // rise toward 0.88
	}
	for i := 0; i < 15; i++ {
		conf = append(conf, 0.4) // sharp collapse
	}
	reason, ok := shouldStop(conf, cfg)
	if !ok || reason != StopDegrading {
		t.Errorf("got %q,%v want degrading", reason, ok)
	}
}

func TestShouldStopTooShort(t *testing.T) {
	cfg := Defaults()
	if _, ok := shouldStop([]float64{0.5}, cfg); ok {
		t.Error("one value should never stop")
	}
}

func TestDegradingRollsBackToPeak(t *testing.T) {
	// Force the degrading pattern with a crowd that lies after a while:
	// easiest is to check PickedIteration <= Iterations when degrading.
	pairs, X, seeds, seedX, truth := pool(5000, 0.3, 6)
	runner := crowd.NewRunner(crowd.NewSimulated(truth, 0.35, 4), 0.01)
	cfg := Defaults()
	cfg.NConverged = 10000
	cfg.NHigh = 10000
	cfg.NDegrade = 8
	cfg.MaxIterations = 60
	res, err := Learn(runner, pairs, X, seeds, seedX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Reason == StopDegrading {
		if res.Trace.PickedIteration > res.Trace.Iterations {
			t.Error("picked iteration out of range")
		}
		peak := res.Trace.Smoothed[res.Trace.PickedIteration-1]
		for _, v := range res.Trace.Smoothed {
			if v > peak+1e-12 {
				t.Error("did not pick the smoothed-confidence peak")
				break
			}
		}
	}
}

func TestSelectBatchPrefersHighEntropy(t *testing.T) {
	pairs, X, seeds, seedX, truth := pool(500, 0.1, 7)
	_ = pairs
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	_ = runner
	// Train a forest on the seeds only; entropy is meaningful afterwards.
	// Use Learn for one iteration instead of exposing internals: just
	// verify the batch has no duplicates and respects q via the public
	// trace after a full run.
	cfg := Defaults()
	cfg.BatchQ = 5
	res, err := Learn(crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01),
		pairs, X, seeds, seedX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := record.NewPairSet()
	for _, l := range res.Training {
		if seen.Has(l.Pair) {
			t.Fatalf("duplicate training example %v", l.Pair)
		}
		seen.Add(l.Pair)
	}
	_ = seedX
}

func TestStrategyString(t *testing.T) {
	if StrategyEntropy.String() != "entropy" || StrategyRandom.String() != "random" {
		t.Error("Strategy.String wrong")
	}
}

// TestRandomStrategyRuns exercises the ablation baseline end to end.
func TestRandomStrategyRuns(t *testing.T) {
	pairs, X, seeds, seedX, truth := pool(800, 0.1, 21)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	cfg := Defaults()
	cfg.Strategy = StrategyRandom
	cfg.Seed = 23
	res, err := Learn(runner, pairs, X, seeds, seedX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forest == nil || res.Trace.Iterations == 0 {
		t.Fatal("random strategy produced no model")
	}
	// Training examples must all come from the pool or seeds, no dupes.
	seen := record.NewPairSet()
	for _, l := range res.Training {
		if seen.Has(l.Pair) {
			t.Fatalf("duplicate %v", l.Pair)
		}
		seen.Add(l.Pair)
	}
}

// TestEntropyBeatsRandomOnSkew: with few labeling rounds on skewed data,
// entropy selection finds the boundary random sampling misses.
func TestEntropyBeatsRandomOnSkew(t *testing.T) {
	run := func(strat Strategy) float64 {
		pairs, X, seeds, seedX, truth := pool(6000, 0.01, 31)
		runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
		cfg := Defaults()
		cfg.Strategy = strat
		cfg.Seed = 33
		cfg.MaxIterations = 8
		cfg.NConverged = 1000 // same fixed budget for both
		cfg.NHigh = 1000
		cfg.NDegrade = 1000
		res, err := Learn(runner, pairs, X, seeds, seedX, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// F1 over the pool.
		var tp, pp, ap int
		for i, v := range X {
			pred := res.Forest.Predict(v)
			isPos := truth.Match(pairs[i])
			if pred {
				pp++
			}
			if isPos {
				ap++
			}
			if pred && isPos {
				tp++
			}
		}
		if pp == 0 || ap == 0 {
			return 0
		}
		p := float64(tp) / float64(pp)
		r := float64(tp) / float64(ap)
		if p+r == 0 {
			return 0
		}
		return 2 * p * r / (p + r)
	}
	fe, fr := run(StrategyEntropy), run(StrategyRandom)
	if fe < fr {
		t.Errorf("entropy F1 %.3f below random %.3f on skewed pool", fe, fr)
	}
}
