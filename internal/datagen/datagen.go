// Package datagen synthesizes the paper's three evaluation datasets —
// Restaurants, Citations, and Products (Table 1) — with known ground truth.
// The generators control exactly the statistical properties Corleone's
// behaviour depends on: dataset sizes, extreme positive skew, attribute
// types, and matching difficulty (clean vs noisy duplicates, hard negatives
// from near-identical entity families, missing values, format variation).
//
// Each generator takes a scale factor so the full pipeline can run at
// bench-friendly sizes while preserving each dataset's shape, and a seed
// for reproducibility.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/corleone-em/corleone/internal/record"
)

// Profile names a generator configuration.
type Profile struct {
	// Name is the dataset name ("Restaurants", "Citations", "Products").
	Name string
	// SizeA, SizeB are the target table sizes.
	SizeA, SizeB int
	// Matches is the target number of true match pairs.
	Matches int
	// Seed drives generation.
	Seed int64
	// Noise scales every perturbation probability (1.0 = the calibrated
	// default; 0 = clean duplicates; 2 = twice as dirty). It is the
	// matching-difficulty dial for sensitivity sweeps.
	Noise float64
}

// Paper-scale profiles matching Table 1.
var (
	RestaurantsPaper = Profile{Name: "Restaurants", SizeA: 533, SizeB: 331, Matches: 112, Seed: 41}
	CitationsPaper   = Profile{Name: "Citations", SizeA: 2616, SizeB: 64263, Matches: 5347, Seed: 42}
	ProductsPaper    = Profile{Name: "Products", SizeA: 2554, SizeB: 22074, Matches: 1154, Seed: 43}
)

// Scaled shrinks a profile by the given factor (table sizes and matches
// scale linearly; the Cartesian product therefore scales quadratically).
func Scaled(p Profile, scale float64) Profile {
	if scale >= 1 {
		return p
	}
	s := func(n int) int {
		m := int(float64(n) * scale)
		if m < 8 {
			m = 8
		}
		return m
	}
	p.SizeA = s(p.SizeA)
	p.SizeB = s(p.SizeB)
	p.Matches = s(p.Matches)
	return p
}

// perturber applies the noise that distinguishes table B's rendition of an
// entity from table A's: typos, token drops and swaps, abbreviation,
// numeric jitter, and missing values. noise scales every probability.
type perturber struct {
	rng   *rand.Rand
	noise float64
}

func newPerturber(rng *rand.Rand, noise float64) *perturber {
	if noise <= 0 {
		noise = 1
	}
	return &perturber{rng: rng, noise: noise}
}

func (pt *perturber) maybe(prob float64) bool {
	p := prob * pt.noise
	if p > 0.95 {
		p = 0.95 // never make an attribute deterministic noise
	}
	return pt.rng.Float64() < p
}

func (pt *perturber) pick(pool []string) string { return pool[pt.rng.Intn(len(pool))] }

// typo applies one random character edit (substitute, delete, insert,
// transpose) to s, leaving very short strings alone.
func (pt *perturber) typo(s string) string {
	rs := []rune(s)
	if len(rs) < 4 {
		return s
	}
	i := 1 + pt.rng.Intn(len(rs)-2)
	switch pt.rng.Intn(4) {
	case 0: // substitute
		rs[i] = rune('a' + pt.rng.Intn(26))
	case 1: // delete
		rs = append(rs[:i], rs[i+1:]...)
	case 2: // insert
		rs = append(rs[:i], append([]rune{rune('a' + pt.rng.Intn(26))}, rs[i:]...)...)
	case 3: // transpose
		rs[i-1], rs[i] = rs[i], rs[i-1]
	}
	return string(rs)
}

// typos applies n independent typos.
func (pt *perturber) typos(s string, n int) string {
	for i := 0; i < n; i++ {
		s = pt.typo(s)
	}
	return s
}

// dropToken removes one random token from a multi-token string.
func (pt *perturber) dropToken(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 3 {
		return s
	}
	i := pt.rng.Intn(len(toks))
	return strings.Join(append(toks[:i:i], toks[i+1:]...), " ")
}

// swapTokens exchanges two adjacent tokens.
func (pt *perturber) swapTokens(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	i := pt.rng.Intn(len(toks) - 1)
	toks[i], toks[i+1] = toks[i+1], toks[i]
	return strings.Join(toks, " ")
}

// truncate keeps the first k tokens (Scholar-style "..." titles).
func (pt *perturber) truncate(s string, minKeep int) string {
	toks := strings.Fields(s)
	if len(toks) <= minKeep {
		return s
	}
	k := minKeep + pt.rng.Intn(len(toks)-minKeep)
	return strings.Join(toks[:k], " ")
}

// jitter perturbs a numeric value multiplicatively within ±frac.
func (pt *perturber) jitter(v, frac float64) float64 {
	return v * (1 + (pt.rng.Float64()*2-1)*frac)
}

// chooseSeeds picks the paper's 2 positive + 2 negative illustrating
// examples deterministically: the first two true matches and two
// definitely-false pairs.
func chooseSeeds(rng *rand.Rand, truth *record.GroundTruth, sizeA, sizeB int) []record.Labeled {
	matches := truth.Matches()
	if len(matches) < 2 {
		panic("datagen: need at least 2 true matches for seed examples")
	}
	seeds := []record.Labeled{
		{Pair: matches[0], Match: true},
		{Pair: matches[len(matches)/2], Match: true},
	}
	for len(seeds) < 4 {
		p := record.P(rng.Intn(sizeA), rng.Intn(sizeB))
		if !truth.Match(p) {
			seeds = append(seeds, record.Labeled{Pair: p, Match: false})
		}
	}
	return seeds
}

// shuffleBoth randomly permutes the rows of both tables and remaps the
// match pairs accordingly, so that matching rows are spread uniformly
// through each table — the property the Blocker's B-sampling strategy
// relies on (§4.1 step 2).
func shuffleBoth(rng *rand.Rand, a, b *record.Table, matches []record.Pair) []record.Pair {
	permA := rng.Perm(a.Len()) // permA[old] = new position
	permB := rng.Perm(b.Len())
	rowsA := make([]record.Tuple, a.Len())
	for old, niu := range permA {
		rowsA[niu] = a.Rows[old]
	}
	rowsB := make([]record.Tuple, b.Len())
	for old, niu := range permB {
		rowsB[niu] = b.Rows[old]
	}
	a.Rows, b.Rows = rowsA, rowsB
	out := make([]record.Pair, len(matches))
	for i, m := range matches {
		out[i] = record.P(permA[m.A], permB[m.B])
	}
	return out
}

// assemble builds the final Dataset and validates it.
func assemble(name string, a, b *record.Table, matches []record.Pair,
	instruction string, rng *rand.Rand) *record.Dataset {

	truth := record.NewGroundTruth(matches)
	ds := &record.Dataset{
		Name:        name,
		A:           a,
		B:           b,
		Truth:       truth,
		Instruction: instruction,
		Seeds:       chooseSeeds(rng, truth, a.Len(), b.Len()),
	}
	if err := ds.Validate(); err != nil {
		panic(fmt.Sprintf("datagen: generated invalid dataset: %v", err))
	}
	return ds
}

// Generate dispatches on profile name.
func Generate(p Profile) *record.Dataset {
	switch p.Name {
	case "Restaurants":
		return Restaurants(p)
	case "Citations":
		return Citations(p)
	case "Products":
		return Products(p)
	case "Scale1M":
		return Synthetic(p)
	default:
		panic(fmt.Sprintf("datagen: unknown profile %q", p.Name))
	}
}

// ProfileByName resolves a user-supplied dataset name to its base profile.
// Matching is case-insensitive and ignores "-"/"_", so "scale-1m",
// "Scale1M", and "SCALE_1M" all resolve; the second return is false for
// unknown names. Every command-line dataset flag and every shard worker's
// job reconstruction resolves through here, so one spelling of a dataset
// means one dataset everywhere.
func ProfileByName(name string) (Profile, bool) {
	key := strings.ToLower(name)
	key = strings.ReplaceAll(key, "-", "")
	key = strings.ReplaceAll(key, "_", "")
	switch key {
	case "restaurants":
		return RestaurantsPaper, true
	case "citations":
		return CitationsPaper, true
	case "products":
		return ProductsPaper, true
	case "scale1m":
		return Scale1M, true
	default:
		return Profile{}, false
	}
}

// DatasetFor generates the named dataset at the given scale and noise
// (scale <= 0 or >= 1 means full profile scale; noise 0 keeps the
// profile's calibrated default). It is the one-call
// deterministic dataset constructor remote shard workers use to rebuild a
// job's inputs from its spec: same (name, scale, noise) in any process —
// including a worker restarted after a crash — yields the byte-identical
// dataset.
func DatasetFor(name string, scale, noise float64) (*record.Dataset, error) {
	base, ok := ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	p := base
	if scale > 0 {
		p = Scaled(base, scale)
	}
	if noise > 0 {
		p.Noise = noise
	}
	return Generate(p), nil
}
