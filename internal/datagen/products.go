package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/corleone-em/corleone/internal/record"
)

// productEntity is one electronics product.
type productEntity struct {
	brand, line, ptype string
	capacity           int // GB, count, inches... rendered per type
	modelno            string
	price              float64
	category           string
	desc               string
}

func productSchema() record.Schema {
	return record.Schema{
		{Name: "brand", Type: record.AttrString},
		{Name: "name", Type: record.AttrText},
		{Name: "modelno", Type: record.AttrCategorical},
		{Name: "price", Type: record.AttrNumeric},
		{Name: "category", Type: record.AttrString},
		{Name: "description", Type: record.AttrText},
	}
}

var capacities = []int{1, 2, 4, 8, 12, 16, 24, 32, 64, 128, 256, 500, 512}

func genProduct(rng *rand.Rand) productEntity {
	brand := brands[rng.Intn(len(brands))]
	line := productLines[rng.Intn(len(productLines))]
	ptype := productTypes[rng.Intn(len(productTypes))]
	capacity := capacities[rng.Intn(len(capacities))]
	model := fmt.Sprintf("%s%d%s%d", strings.ToUpper(brand[:2]),
		1000+rng.Intn(9000), string(rune('A'+rng.Intn(26))), capacity)
	nd := 5 + rng.Intn(8)
	dw := make([]string, nd)
	for i := range dw {
		dw[i] = descWords[rng.Intn(len(descWords))]
	}
	return productEntity{
		brand:    brand,
		line:     line,
		ptype:    ptype,
		capacity: capacity,
		modelno:  model,
		price:    float64(10+rng.Intn(490)) + 0.99,
		category: productCategories[rng.Intn(len(productCategories))],
		desc:     strings.Join(dw, " "),
	}
}

// variant derives a near-identical sibling product (different capacity and
// model number) — the "Kingston HyperX 4GB Kit" vs "12GB Kit" hard negative
// of the paper's Figure 4.
func (e productEntity) variant(rng *rand.Rand) productEntity {
	v := e
	for v.capacity == e.capacity {
		v.capacity = capacities[rng.Intn(len(capacities))]
	}
	v.modelno = fmt.Sprintf("%s%d%s%d", strings.ToUpper(v.brand[:2]),
		1000+rng.Intn(9000), string(rune('A'+rng.Intn(26))), v.capacity)
	v.price = e.price * (0.8 + rng.Float64()*0.45)
	return v
}

// name renders the canonical product title.
func (e productEntity) name() string {
	return fmt.Sprintf("%s %s %dgb %s", e.brand, e.line, e.capacity, e.ptype)
}

func (e productEntity) row() record.Tuple {
	return record.Tuple{e.brand, e.name(), e.modelno, fmt.Sprintf("%.2f", e.price),
		e.category, e.desc}
}

// noisyProduct renders the entity as the second retailer lists it: reworded
// title, jittered price, frequently missing model number, paraphrased
// description. Missing model numbers are the key difficulty — without the
// near-key attribute, matching must fall back to fuzzy title comparison
// against hard-negative variants.
func noisyProduct(pt *perturber, e productEntity) record.Tuple {
	var name string
	switch pt.rng.Intn(3) {
	case 0:
		name = fmt.Sprintf("%s %d gb %s %s", e.brand, e.capacity, e.line, e.ptype)
	case 1:
		name = fmt.Sprintf("%s %s %s %dgb", e.brand, e.line, e.ptype, e.capacity)
	default:
		name = e.name()
	}
	if pt.maybe(0.25) {
		name = pt.typo(name)
	}
	if pt.maybe(0.15) {
		name = pt.dropToken(name)
	}

	model := e.modelno
	switch {
	case pt.maybe(0.45):
		model = "" // missing at the second retailer
	case pt.maybe(0.15):
		model = strings.ToLower(model)
	}

	price := fmt.Sprintf("%.2f", pt.jitter(e.price, 0.05))
	if pt.maybe(0.1) {
		price = ""
	}

	category := e.category
	if pt.maybe(0.3) {
		category = productCategories[pt.rng.Intn(len(productCategories))]
	}

	desc := e.desc
	if pt.maybe(0.5) {
		desc = pt.swapTokens(pt.dropToken(desc))
	}
	if pt.maybe(0.2) {
		desc = ""
	}
	return record.Tuple{e.brand, name, model, price, category, desc}
}

// Products generates the Amazon-Walmart-style electronics dataset: table A
// is one retailer's catalog, the much larger table B is the other's.
// Matched products appear in both with heavy renaming noise; every matched
// product also spawns same-brand same-line variants in B (different
// capacity / model), so the dataset is dense in hard negatives. This is the
// hardest dataset — the paper's Table 2 shows traditional training
// collapses to 40.5–69.5% F1 here while Corleone reaches 89.3%.
func Products(p Profile) *record.Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	pt := newPerturber(rng, p.Noise)
	schema := productSchema()
	a := record.NewTable("products_a", schema)
	b := record.NewTable("products_b", schema)

	if p.Matches > p.SizeA {
		p.Matches = p.SizeA
	}
	if p.Matches > p.SizeB {
		p.Matches = p.SizeB
	}

	var matches []record.Pair
	for i := 0; i < p.Matches; i++ {
		e := genProduct(rng)
		a.Append(e.row())
		b.Append(noisyProduct(pt, e))
		matches = append(matches, record.P(a.Len()-1, b.Len()-1))
		// Hard negatives: 1-3 variants of the same product land in B.
		nv := 2 + rng.Intn(3)
		for v := 0; v < nv && b.Len() < p.SizeB; v++ {
			b.Append(noisyProduct(pt, e.variant(rng)))
		}
	}
	for a.Len() < p.SizeA {
		e := genProduct(rng)
		a.Append(e.row())
		// Some unmatched A products also have B variants (near misses).
		if pt.maybe(0.3) && b.Len() < p.SizeB {
			b.Append(noisyProduct(pt, e.variant(rng)))
		}
	}
	for b.Len() < p.SizeB {
		b.Append(noisyProduct(pt, genProduct(rng)))
	}

	matches = shuffleBoth(rng, a, b, matches)
	return assemble("Products", a, b, matches,
		"These records describe electronics products sold by two "+
			"retailers. They match if they represent exactly the same "+
			"product (same model and capacity), not merely similar ones.", rng)
}
