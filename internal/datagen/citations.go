package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/corleone-em/corleone/internal/record"
)

// citationEntity is one publication.
type citationEntity struct {
	title   string
	authors []author
	venue   string
	year    int
}

type author struct{ first, last string }

func citationSchema() record.Schema {
	return record.Schema{
		{Name: "title", Type: record.AttrText},
		{Name: "authors", Type: record.AttrString},
		{Name: "venue", Type: record.AttrString},
		{Name: "year", Type: record.AttrNumeric},
	}
}

func genCitation(rng *rand.Rand) citationEntity {
	n := 4 + rng.Intn(7)
	words := make([]string, n)
	for i := range words {
		words[i] = titleWords[rng.Intn(len(titleWords))]
	}
	na := 1 + rng.Intn(4)
	authors := make([]author, na)
	for i := range authors {
		authors[i] = author{
			first: firstNames[rng.Intn(len(firstNames))],
			last:  lastNames[rng.Intn(len(lastNames))],
		}
	}
	return citationEntity{
		title:   strings.Join(words, " "),
		authors: authors,
		venue:   venues[rng.Intn(len(venues))],
		year:    1990 + rng.Intn(24),
	}
}

// dblpRow renders the citation the way the curated side (DBLP) would:
// full author names, abbreviated venue, year always present.
func (e citationEntity) dblpRow() record.Tuple {
	names := make([]string, len(e.authors))
	for i, a := range e.authors {
		names[i] = a.first + " " + a.last
	}
	return record.Tuple{e.title, strings.Join(names, ", "), e.venue, fmt.Sprintf("%d", e.year)}
}

// scholarRow renders the citation the way the scraped side (Google
// Scholar) would: initials for first names, truncated or typo'd titles,
// long venue names, frequently missing years — the noise that makes
// Citations a medium-difficulty dataset (92.1% F1 in Table 2).
func scholarRow(pt *perturber, e citationEntity) record.Tuple {
	title := e.title
	if pt.maybe(0.5) {
		title = pt.typos(title, 1+pt.rng.Intn(2))
	}
	if pt.maybe(0.3) {
		title = pt.truncate(title, 3)
	}
	if pt.maybe(0.1) {
		title = pt.swapTokens(title)
	}

	names := make([]string, len(e.authors))
	for i, a := range e.authors {
		if pt.maybe(0.7) {
			names[i] = a.first[:1] + ". " + a.last
		} else {
			names[i] = a.first + " " + a.last
		}
	}
	if len(names) > 2 && pt.maybe(0.2) {
		names = append(names[:len(names)-1], "et al")
	}
	authorsStr := strings.Join(names, ", ")
	if pt.maybe(0.1) {
		authorsStr = pt.typo(authorsStr)
	}

	venue := e.venue
	if long, ok := venueLong[venue]; ok && pt.maybe(0.5) {
		venue = long
	}
	if pt.maybe(0.15) {
		venue = "proc. of " + venue
	}

	year := fmt.Sprintf("%d", e.year)
	if pt.maybe(0.3) {
		year = ""
	} else if pt.maybe(0.03) {
		year = fmt.Sprintf("%d", e.year+1) // off-by-one scrape error
	}
	return record.Tuple{title, authorsStr, venue, year}
}

// Citations generates the DBLP-Scholar-style dataset: a small curated table
// A and a much larger scraped table B where matched publications appear in
// B one or more times (the paper has 5347 matches against 2616 A rows, so
// roughly two Scholar copies per matched DBLP record). Non-matching B rows
// include "hard" near-duplicates: different papers sharing title words,
// venues, and authors.
func Citations(p Profile) *record.Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	pt := newPerturber(rng, p.Noise)
	schema := citationSchema()
	a := record.NewTable("citations_dblp", schema)
	b := record.NewTable("citations_scholar", schema)

	// Roughly 80% of A rows have Scholar copies; copies per matched row
	// follow the ratio Matches / (0.8 * SizeA).
	matchedA := int(0.8 * float64(p.SizeA))
	if matchedA < 1 {
		matchedA = 1
	}
	if matchedA > p.Matches {
		matchedA = p.Matches
	}

	var matches []record.Pair
	remaining := p.Matches
	for i := 0; i < p.SizeA; i++ {
		e := genCitation(rng)
		a.Append(e.dblpRow())
		if i >= matchedA || remaining == 0 {
			continue
		}
		// Distribute remaining matches over remaining matched rows.
		rowsLeft := matchedA - i
		copies := remaining / rowsLeft
		if remaining%rowsLeft != 0 && rng.Intn(rowsLeft) == 0 {
			copies++
		}
		if copies < 1 {
			copies = 1
		}
		if copies > remaining {
			copies = remaining
		}
		for c := 0; c < copies && b.Len() < p.SizeB; c++ {
			b.Append(scholarRow(pt, e))
			matches = append(matches, record.P(i, b.Len()-1))
			remaining--
		}
	}

	// Fill B with non-matching citations; a fraction are hard negatives
	// sharing an A row's venue and some title vocabulary.
	for b.Len() < p.SizeB {
		e := genCitation(rng)
		if pt.maybe(0.3) && a.Len() > 0 {
			// Hard negative: a different paper from the same venue with
			// overlapping title words.
			src := genCitation(rng)
			ref := rng.Intn(a.Len())
			refTitle := strings.Fields(a.Rows[ref][0])
			toks := strings.Fields(src.title)
			for i := range toks {
				if rng.Intn(2) == 0 && i < len(refTitle) {
					toks[i] = refTitle[i]
				}
			}
			src.title = strings.Join(toks, " ")
			src.venue = a.Rows[ref][2]
			e = src
		}
		b.Append(scholarRow(pt, e))
	}

	matches = shuffleBoth(rng, a, b, matches)
	return assemble("Citations", a, b, matches,
		"These records are bibliographic citations from DBLP and Google "+
			"Scholar. They match if they refer to the same publication.", rng)
}
