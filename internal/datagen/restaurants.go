package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/corleone-em/corleone/internal/record"
)

// restaurantEntity is one real-world restaurant.
type restaurantEntity struct {
	name, addr, city, phone, cuisine string
}

func restaurantSchema() record.Schema {
	return record.Schema{
		{Name: "name", Type: record.AttrString},
		{Name: "addr", Type: record.AttrString},
		{Name: "city", Type: record.AttrString},
		{Name: "phone", Type: record.AttrCategorical},
		{Name: "cuisine", Type: record.AttrString},
	}
}

func genRestaurant(rng *rand.Rand) restaurantEntity {
	var name string
	switch rng.Intn(3) {
	case 0:
		name = fmt.Sprintf("%s's %s %s", lastNames[rng.Intn(len(lastNames))],
			cuisines[rng.Intn(len(cuisines))], restaurantSuffixes[rng.Intn(len(restaurantSuffixes))])
	case 1:
		name = fmt.Sprintf("the %s %s", streetNames[rng.Intn(len(streetNames))],
			restaurantSuffixes[rng.Intn(len(restaurantSuffixes))])
	default:
		name = fmt.Sprintf("%s %s %s", firstNames[rng.Intn(len(firstNames))],
			lastNames[rng.Intn(len(lastNames))], restaurantSuffixes[rng.Intn(len(restaurantSuffixes))])
	}
	return restaurantEntity{
		name: name,
		addr: fmt.Sprintf("%d %s %s", 1+rng.Intn(9999),
			streetNames[rng.Intn(len(streetNames))], streetTypes[rng.Intn(len(streetTypes))]),
		city: cities[rng.Intn(len(cities))],
		phone: fmt.Sprintf("%d%02d-%03d-%04d", 2+rng.Intn(8), rng.Intn(100),
			rng.Intn(1000), rng.Intn(10000)),
		cuisine: cuisines[rng.Intn(len(cuisines))],
	}
}

func (e restaurantEntity) row() record.Tuple {
	return record.Tuple{e.name, e.addr, e.city, e.phone, e.cuisine}
}

// noisyRestaurant renders the entity as a second listing service would:
// occasional typos, street-type long forms, city abbreviations, phone
// reformatting, and missing cuisine. The perturbations are mild — the paper
// reports Restaurants as the easiest dataset (96.5% F1 with no blocking).
func noisyRestaurant(pt *perturber, e restaurantEntity) record.Tuple {
	name := e.name
	if pt.maybe(0.3) {
		name = pt.typo(name)
	}
	if pt.maybe(0.1) {
		name = pt.dropToken(name)
	}
	addr := e.addr
	if pt.maybe(0.5) {
		for abbr, long := range streetTypeLong {
			if strings.HasSuffix(addr, " "+abbr) {
				addr = strings.TrimSuffix(addr, abbr) + long
				break
			}
		}
	}
	if pt.maybe(0.15) {
		addr = pt.typo(addr)
	}
	city := e.city
	if ab, ok := cityAbbrev[city]; ok && pt.maybe(0.4) {
		city = ab
	}
	phone := e.phone
	if pt.maybe(0.4) {
		phone = "(" + phone[:3] + ") " + phone[4:]
	}
	if pt.maybe(0.05) {
		phone = "" // missing
	}
	cuisine := e.cuisine
	if pt.maybe(0.25) {
		cuisine = ""
	}
	return record.Tuple{name, addr, city, phone, cuisine}
}

// Restaurants generates the Fodors-Zagat-style dataset: two modest lists of
// restaurant listings where each match is the same restaurant described by
// two services. Matches are one-to-one, noise is mild, and the Cartesian
// product is small enough that blocking never triggers — exactly the Table
// 1 / Table 3 behaviour.
func Restaurants(p Profile) *record.Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	pt := newPerturber(rng, p.Noise)
	schema := restaurantSchema()
	a := record.NewTable("restaurants_a", schema)
	b := record.NewTable("restaurants_b", schema)

	if p.Matches > p.SizeA {
		p.Matches = p.SizeA
	}
	if p.Matches > p.SizeB {
		p.Matches = p.SizeB
	}

	// Shared entities appear in both tables; the rest are distinct.
	var matches []record.Pair
	for i := 0; i < p.Matches; i++ {
		e := genRestaurant(rng)
		a.Append(e.row())
		b.Append(noisyRestaurant(pt, e))
		matches = append(matches, record.P(a.Len()-1, b.Len()-1))
	}
	for a.Len() < p.SizeA {
		a.Append(genRestaurant(rng).row())
	}
	for b.Len() < p.SizeB {
		b.Append(genRestaurant(rng).row())
	}

	matches = shuffleBoth(rng, a, b, matches)
	return assemble("Restaurants", a, b, matches,
		"These records describe restaurants from two listing services. "+
			"They match if they refer to the same restaurant location.", rng)
}
