package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/corleone-em/corleone/internal/record"
)

// Scale1M is the sharded-execution workload: a million records per side
// with a heavily skewed (Zipf) token distribution, the regime where a
// single-process inverted index stops fitting comfortably and the §4.3
// A×B scan is only tractable behind blocking. Matches are 25% of a side so
// the umbrella set stays large enough to exercise the merge path. Generate
// at reduced -scale for tests; the full profile is for benchmarks and the
// EXPERIMENTS.md scale run.
var Scale1M = Profile{Name: "Scale1M", SizeA: 1_000_000, SizeB: 1_000_000, Matches: 250_000, Seed: 46}

// syntheticVocab is the token universe for Scale1M names. Zipf-ranked:
// token 0 appears in a large fraction of all names (a stop word with a
// posting list of ~10⁵⁻⁶ rows — the skew that makes naive index probes
// degenerate), while the tail tokens are near-unique.
const syntheticVocab = 40_000

// synTok renders vocabulary token i. Tokens are ≥6 chars so 3-gram
// features behave like real words rather than colliding constantly.
func synTok(i uint64) string { return fmt.Sprintf("tok%05x", i) }

func syntheticSchema() record.Schema {
	return record.Schema{
		{Name: "name", Type: record.AttrText},
		{Name: "price", Type: record.AttrNumeric},
	}
}

// synEntity is one synthetic record: a 5–9 token name drawn from the Zipf
// vocabulary plus a price. The lean two-attribute schema keeps per-record
// profile memory small, which is what lets the profile reach 10⁶ rows per
// side without the feature layer dominating the experiment.
type synEntity struct {
	toks  []string
	price float64
}

func genSynthetic(rng *rand.Rand, zipf *rand.Zipf) synEntity {
	n := 5 + rng.Intn(5)
	toks := make([]string, n)
	for i := range toks {
		toks[i] = synTok(zipf.Uint64())
	}
	return synEntity{toks: toks, price: float64(1+rng.Intn(9999)) / 100}
}

func (e synEntity) row() record.Tuple {
	return record.Tuple{strings.Join(e.toks, " "), fmt.Sprintf("%.2f", e.price)}
}

// noisySynthetic renders the entity as table B lists it: token swaps,
// drops, typos, and a jittered price — enough noise that matching needs
// fuzzy similarity, little enough that ground truth stays recoverable.
func noisySynthetic(pt *perturber, e synEntity) record.Tuple {
	name := strings.Join(e.toks, " ")
	if pt.maybe(0.3) {
		name = pt.swapTokens(name)
	}
	if pt.maybe(0.2) {
		name = pt.dropToken(name)
	}
	if pt.maybe(0.25) {
		name = pt.typo(name)
	}
	price := fmt.Sprintf("%.2f", pt.jitter(e.price, 0.05))
	if pt.maybe(0.05) {
		price = ""
	}
	return record.Tuple{name, price}
}

// Synthetic generates the Scale1M-shaped dataset at any profile size: each
// match is one entity rendered cleanly in A and noisily in B; the rest of
// both tables is filled with fresh entities. Token frequencies follow a
// Zipf law over a fixed vocabulary, giving the inverted index the long
// posting lists and hot tokens of real text corpora.
func Synthetic(p Profile) *record.Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	// s=1.07, v=1 approximates natural-language rank-frequency skew.
	zipf := rand.NewZipf(rng, 1.07, 1, syntheticVocab-1)
	pt := newPerturber(rng, p.Noise)
	schema := syntheticSchema()
	a := record.NewTable("synthetic_a", schema)
	b := record.NewTable("synthetic_b", schema)

	if p.Matches > p.SizeA {
		p.Matches = p.SizeA
	}
	if p.Matches > p.SizeB {
		p.Matches = p.SizeB
	}

	matches := make([]record.Pair, 0, p.Matches)
	for i := 0; i < p.Matches; i++ {
		e := genSynthetic(rng, zipf)
		a.Append(e.row())
		b.Append(noisySynthetic(pt, e))
		matches = append(matches, record.P(a.Len()-1, b.Len()-1))
	}
	for a.Len() < p.SizeA {
		a.Append(genSynthetic(rng, zipf).row())
	}
	for b.Len() < p.SizeB {
		b.Append(genSynthetic(rng, zipf).row())
	}

	matches = shuffleBoth(rng, a, b, matches)
	return assemble("Scale1M", a, b, matches,
		"These records describe synthetic catalog entries. They match if "+
			"they list the same underlying item, allowing for token "+
			"reordering, drops, and typos.", rng)
}
