package datagen

// Word pools for the synthetic generators. The pools are large enough that
// seeded sampling produces realistic-looking, largely distinct entities at
// the paper's dataset sizes.

var firstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
	"nancy", "daniel", "lisa", "matthew", "margaret", "anthony", "betty",
	"mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
	"emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
	"kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
	"deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon",
	"jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary",
	"amy", "nicholas", "shirley", "eric", "angela", "jonathan", "helen",
	"stephen", "anna", "larry", "brenda", "justin", "pamela", "scott",
	"nicole", "brandon", "emma", "benjamin", "samantha", "samuel", "katherine",
	"gregory", "christine", "frank", "debra", "alexander", "rachel",
	"raymond", "catherine", "patrick", "carolyn", "jack", "janet", "dennis",
	"ruth", "jerry", "maria", "tyler", "heather", "aaron", "diane", "jose",
	"virginia", "adam", "julie", "nathan", "joyce", "henry", "victoria",
	"douglas", "olivia", "zachary", "kelly", "peter", "christina", "kyle",
	"lauren", "walter", "joan", "ethan", "evelyn", "jeremy", "judith",
	"harold", "megan", "keith", "cheryl", "christian", "andrea", "roger",
	"hannah", "noah", "martha", "gerald", "jacqueline", "carl", "frances",
	"terry", "gloria", "sean", "ann", "austin", "teresa", "arthur", "kathryn",
	"lawrence", "sara", "jesse", "janice", "dylan", "jean", "bryan", "alice",
	"joe", "madison", "jordan", "doris", "billy", "abigail", "bruce", "julia",
	"albert", "judy", "willie", "grace", "gabriel", "denise", "logan",
	"amber", "alan", "marilyn", "juan", "beverly", "wayne", "danielle",
	"roy", "theresa", "ralph", "sophia", "randy", "marie", "eugene", "diana",
	"vincent", "brittany", "russell", "natalie", "elijah", "isabella",
	"louis", "charlotte", "bobby", "rose", "philip", "alexis", "johnny",
	"kayla", "xin", "wei", "li", "ming", "anil", "priya", "ravi", "sanjay",
	"yuki", "hiro", "kenji", "akira", "lars", "sven", "ingrid", "pierre",
	"claude", "marcel", "giulia", "marco", "paolo", "ahmed", "fatima",
	"omar", "layla", "chen", "yan", "jin", "hao",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
	"parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
	"morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
	"cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
	"kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
	"wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
	"price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
	"ross", "foster", "jimenez", "powell", "jenkins", "perry", "russell",
	"sullivan", "bell", "coleman", "butler", "henderson", "barnes",
	"fisher", "vasquez", "simmons", "romero", "jordan", "patterson",
	"alexander", "hamilton", "graham", "reynolds", "griffin", "wallace",
	"moreno", "west", "cole", "hayes", "bryant", "herrera", "gibson",
	"ellis", "tran", "medina", "aguilar", "stevens", "murray", "ford",
	"castro", "marshall", "owens", "harrison", "fernandez", "mcdonald",
	"woods", "washington", "kennedy", "wells", "vargas", "henry", "chen",
	"freeman", "webb", "tucker", "guzman", "burns", "crawford", "olson",
	"simpson", "porter", "hunter", "gordon", "mendez", "silva", "shaw",
	"snyder", "mason", "dixon", "munoz", "hunt", "hicks", "holmes",
	"palmer", "wagner", "black", "robertson", "boyd", "rose", "stone",
	"salazar", "fox", "warren", "mills", "meyer", "rice", "schmidt",
	"zhang", "wang", "liu", "yang", "huang", "zhao", "wu", "zhou", "xu",
	"sun", "das", "gupta", "sharma", "singh", "kumar", "rao", "reddy",
	"iyer", "banerjee", "mukherjee", "tanaka", "suzuki", "sato", "watanabe",
	"ito", "yamamoto", "nakamura", "kobayashi", "mueller", "schneider",
	"fischer", "weber", "becker", "hoffmann", "rossi", "russo", "ferrari",
	"esposito", "bianchi", "dubois", "moreau", "laurent", "lefebvre",
}

var cuisines = []string{
	"italian", "french", "chinese", "japanese", "thai", "mexican", "indian",
	"greek", "spanish", "korean", "vietnamese", "american", "cajun",
	"seafood", "steakhouse", "mediterranean", "lebanese", "ethiopian",
	"turkish", "brazilian", "peruvian", "german", "moroccan", "cuban",
	"southern", "bbq", "vegetarian", "fusion", "continental", "californian",
}

var restaurantSuffixes = []string{
	"grill", "bistro", "kitchen", "cafe", "house", "garden", "place",
	"tavern", "diner", "room", "corner", "table", "bar", "brasserie",
	"trattoria", "cantina", "palace", "express", "deli", "eatery",
}

var streetNames = []string{
	"main", "oak", "maple", "cedar", "pine", "elm", "washington", "lake",
	"hill", "park", "river", "spring", "ridge", "church", "market",
	"union", "highland", "forest", "sunset", "madison", "jefferson",
	"franklin", "lincoln", "jackson", "broadway", "college", "center",
	"mill", "walnut", "chestnut", "willow", "valley", "meadow", "prospect",
	"grove", "pleasant", "arlington", "clinton", "monroe", "bridge",
}

var streetTypes = []string{"st", "ave", "blvd", "rd", "dr", "ln", "way", "pl"}

// streetTypeLong maps street-type abbreviations to their long forms; the
// perturber flips between them to simulate format differences.
var streetTypeLong = map[string]string{
	"st": "street", "ave": "avenue", "blvd": "boulevard", "rd": "road",
	"dr": "drive", "ln": "lane", "way": "way", "pl": "place",
}

var cities = []string{
	"new york", "los angeles", "chicago", "houston", "phoenix",
	"philadelphia", "san antonio", "san diego", "dallas", "san jose",
	"austin", "jacksonville", "san francisco", "columbus", "fort worth",
	"indianapolis", "charlotte", "seattle", "denver", "washington",
	"boston", "el paso", "nashville", "detroit", "oklahoma city",
	"portland", "las vegas", "memphis", "louisville", "baltimore",
	"milwaukee", "albuquerque", "tucson", "fresno", "sacramento",
	"kansas city", "atlanta", "miami", "oakland", "minneapolis",
	"cleveland", "new orleans", "tampa", "pittsburgh", "cincinnati",
	"madison", "st louis", "orlando", "raleigh", "buffalo",
}

// cityAbbrev maps city names to common short forms.
var cityAbbrev = map[string]string{
	"new york": "nyc", "los angeles": "la", "san francisco": "sf",
	"washington": "dc", "new orleans": "nola", "philadelphia": "philly",
}

var titleWords = []string{
	"efficient", "scalable", "distributed", "parallel", "adaptive",
	"incremental", "approximate", "optimal", "robust", "dynamic",
	"learning", "mining", "matching", "indexing", "clustering", "ranking",
	"sampling", "streaming", "caching", "partitioning", "estimation",
	"optimization", "evaluation", "integration", "extraction", "resolution",
	"deduplication", "classification", "aggregation", "compression",
	"query", "queries", "data", "database", "databases", "graph", "graphs",
	"entity", "entities", "schema", "schemas", "record", "records",
	"crowdsourcing", "crowdsourced", "probabilistic", "declarative",
	"relational", "transactional", "temporal", "spatial", "semantic",
	"keyword", "search", "join", "joins", "similarity", "skyline",
	"processing", "systems", "framework", "frameworks", "approach",
	"approaches", "algorithm", "algorithms", "model", "models", "analysis",
	"management", "discovery", "detection", "selection", "inference",
	"networks", "web", "cloud", "memory", "storage", "workload",
	"workloads", "benchmark", "benchmarking", "privacy", "secure",
	"federated", "hybrid", "online", "offline", "interactive", "scalability",
	"uncertain", "heterogeneous", "knowledge", "bases", "warehouse",
	"provenance", "lineage", "views", "materialized", "concurrency",
	"recovery", "transactions", "locking", "consistency", "replication",
}

var venues = []string{
	"sigmod", "vldb", "icde", "edbt", "cidr", "pods", "kdd", "icdm",
	"sdm", "wsdm", "www", "sigir", "cikm", "nips", "icml", "aaai",
	"ijcai", "acl", "emnlp", "sosp", "osdi", "nsdi", "atc", "eurosys",
	"socc", "hpdc", "ipdps", "sc", "isca", "micro",
}

// venueLong maps venue abbreviations to full names.
var venueLong = map[string]string{
	"sigmod": "acm sigmod international conference on management of data",
	"vldb":   "international conference on very large data bases",
	"icde":   "ieee international conference on data engineering",
	"kdd":    "acm sigkdd conference on knowledge discovery and data mining",
	"www":    "international world wide web conference",
	"icml":   "international conference on machine learning",
	"nips":   "neural information processing systems",
	"sosp":   "acm symposium on operating systems principles",
	"osdi":   "usenix symposium on operating systems design and implementation",
	"sigir":  "acm sigir conference on research and development in information retrieval",
}

var brands = []string{
	"kingston", "samsung", "sony", "toshiba", "seagate", "sandisk",
	"logitech", "netgear", "linksys", "asus", "acer", "dell", "lenovo",
	"canon", "nikon", "panasonic", "philips", "jvc", "garmin", "tomtom",
	"corsair", "crucial", "intel", "amd", "nvidia", "belkin", "dlink",
	"apple", "microsoft", "hp", "epson", "brother", "lexmark", "viewsonic",
	"benq", "lg", "sharp", "vizio", "pioneer", "kenwood", "yamaha",
	"denon", "onkyo", "bose", "jbl", "klipsch", "polk", "sennheiser",
	"plantronics", "jabra",
}

var productTypes = []string{
	"memory kit", "ssd", "hard drive", "usb flash drive", "sd card",
	"router", "keyboard", "mouse", "webcam", "headset", "monitor",
	"printer", "scanner", "speaker", "soundbar", "receiver", "camcorder",
	"camera", "gps navigator", "external drive", "graphics card",
	"power supply", "laptop battery", "docking station", "network switch",
	"projector", "headphones", "earbuds", "microphone", "tablet case",
}

var productLines = []string{
	"hyperx", "elite", "pro", "ultra", "max", "evo", "fury", "vengeance",
	"ballistix", "extreme", "plus", "prime", "classic", "signature",
	"performance", "essential", "advanced", "turbo", "power", "swift",
	"precision", "vision", "clarity", "impact", "fusion", "spark",
	"momentum", "pulse", "apex", "titan",
}

var productCategories = []string{
	"computer memory", "storage", "networking", "peripherals", "audio",
	"video", "photography", "accessories",
}

var descWords = []string{
	"high", "performance", "reliable", "fast", "compact", "portable",
	"durable", "premium", "certified", "tested", "warranty", "energy",
	"efficient", "low", "latency", "profile", "heat", "spreader",
	"compatible", "desktop", "laptop", "gaming", "professional", "series",
	"design", "quality", "speed", "capacity", "technology", "advanced",
	"wireless", "connectivity", "plug", "play", "easy", "setup",
	"lifetime", "support", "backed", "engineered", "optimized",
}
