package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/corleone-em/corleone/internal/record"
)

func TestScaled(t *testing.T) {
	p := Scaled(CitationsPaper, 0.1)
	if p.SizeA != 261 || p.SizeB != 6426 || p.Matches != 534 {
		t.Errorf("scaled profile = %+v", p)
	}
	// Scale >= 1 is identity.
	if got := Scaled(CitationsPaper, 1.5); got != CitationsPaper {
		t.Errorf("upscale changed profile: %+v", got)
	}
	// Tiny scales floor at 8.
	if got := Scaled(RestaurantsPaper, 0.001); got.SizeA < 8 {
		t.Errorf("floor violated: %+v", got)
	}
}

func checkDataset(t *testing.T, ds *record.Dataset, p Profile) {
	t.Helper()
	if err := ds.Validate(); err != nil {
		t.Fatalf("%s: %v", ds.Name, err)
	}
	if ds.A.Len() != p.SizeA || ds.B.Len() != p.SizeB {
		t.Errorf("%s: sizes %d/%d, want %d/%d", ds.Name, ds.A.Len(), ds.B.Len(), p.SizeA, p.SizeB)
	}
	got := ds.Truth.NumMatches()
	if got < p.Matches*8/10 || got > p.Matches {
		t.Errorf("%s: matches = %d, want ~%d", ds.Name, got, p.Matches)
	}
	if ds.Instruction == "" {
		t.Errorf("%s: missing instruction", ds.Name)
	}
	pos, neg := 0, 0
	for _, s := range ds.Seeds {
		if s.Match {
			if !ds.Truth.Match(s.Pair) {
				t.Errorf("%s: positive seed %v is not a true match", ds.Name, s.Pair)
			}
			pos++
		} else {
			if ds.Truth.Match(s.Pair) {
				t.Errorf("%s: negative seed %v is a true match", ds.Name, s.Pair)
			}
			neg++
		}
	}
	if pos < 2 || neg < 2 {
		t.Errorf("%s: seeds %d+/%d-", ds.Name, pos, neg)
	}
}

func TestRestaurantsGeneration(t *testing.T) {
	p := Scaled(RestaurantsPaper, 0.5)
	ds := Restaurants(p)
	checkDataset(t, ds, p)
	// One-to-one matching: no A or B row matched twice.
	seenA := map[int32]bool{}
	seenB := map[int32]bool{}
	for _, m := range ds.Truth.Matches() {
		if seenA[m.A] || seenB[m.B] {
			t.Fatal("Restaurants matching is not one-to-one")
		}
		seenA[m.A] = true
		seenB[m.B] = true
	}
}

func TestCitationsGeneration(t *testing.T) {
	p := Scaled(CitationsPaper, 0.05)
	ds := Citations(p)
	checkDataset(t, ds, p)
	// Citations is one-to-many: some A row should have multiple B copies.
	perA := map[int32]int{}
	for _, m := range ds.Truth.Matches() {
		perA[m.A]++
	}
	multi := false
	for _, n := range perA {
		if n > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("expected at least one DBLP record with multiple Scholar copies")
	}
}

func TestProductsGeneration(t *testing.T) {
	p := Scaled(ProductsPaper, 0.08)
	ds := Products(p)
	checkDataset(t, ds, p)
	// Matched pairs share the brand (the generator preserves it).
	bi := ds.A.Schema.Index("brand")
	for _, m := range ds.Truth.Matches() {
		if ds.A.Rows[m.A][bi] != ds.B.Rows[m.B][bi] {
			t.Fatalf("matched pair %v has different brands", m)
		}
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, name := range []string{"Restaurants", "Citations", "Products"} {
		p := Profile{Name: name, SizeA: 40, SizeB: 60, Matches: 12, Seed: 5}
		ds := Generate(p)
		if ds.Name != name {
			t.Errorf("Generate(%s) produced %s", name, ds.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown profile should panic")
		}
	}()
	Generate(Profile{Name: "nope"})
}

func TestGenerationDeterministic(t *testing.T) {
	p := Scaled(ProductsPaper, 0.03)
	a := Generate(p)
	b := Generate(p)
	if a.A.Len() != b.A.Len() || a.Truth.NumMatches() != b.Truth.NumMatches() {
		t.Fatal("same profile, different shapes")
	}
	for i := range a.A.Rows {
		for j := range a.A.Rows[i] {
			if a.A.Rows[i][j] != b.A.Rows[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	am, bm := a.Truth.Matches(), b.Truth.Matches()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatal("same seed produced different ground truth")
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	p := Scaled(ProductsPaper, 0.03)
	q := p
	q.Seed = p.Seed + 1
	a, b := Generate(p), Generate(q)
	same := true
	for i := range a.A.Rows {
		if a.A.Rows[i][1] != b.A.Rows[i][1] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestPerturberTypo(t *testing.T) {
	pt := &perturber{rng: rand.New(rand.NewSource(1))}
	if got := pt.typo("abc"); got != "abc" {
		t.Error("short strings must not be perturbed")
	}
	changed := 0
	for i := 0; i < 50; i++ {
		if pt.typo("kingston memory") != "kingston memory" {
			changed++
		}
	}
	if changed < 40 {
		t.Errorf("typo changed only %d/50", changed)
	}
}

func TestPerturberDropSwapTruncate(t *testing.T) {
	pt := &perturber{rng: rand.New(rand.NewSource(2))}
	if got := pt.dropToken("a b"); got != "a b" {
		t.Error("two-token strings must not drop")
	}
	got := pt.dropToken("a b c d")
	if len(strings.Fields(got)) != 3 {
		t.Errorf("dropToken = %q", got)
	}
	got = pt.swapTokens("a b")
	if got != "b a" {
		t.Errorf("swapTokens = %q", got)
	}
	got = pt.truncate("a b c d e f", 2)
	if n := len(strings.Fields(got)); n < 2 || n > 6 {
		t.Errorf("truncate = %q", got)
	}
	if got := pt.truncate("a b", 3); got != "a b" {
		t.Error("short strings must not truncate")
	}
}

func TestPerturberJitter(t *testing.T) {
	pt := &perturber{rng: rand.New(rand.NewSource(3))}
	for i := 0; i < 100; i++ {
		v := pt.jitter(100, 0.05)
		if v < 95 || v > 105 {
			t.Fatalf("jitter out of range: %v", v)
		}
	}
}

func TestShuffleBothRemapsTruth(t *testing.T) {
	schema := record.Schema{{Name: "v", Type: record.AttrString}}
	a := record.NewTable("a", schema)
	b := record.NewTable("b", schema)
	for i := 0; i < 20; i++ {
		a.Append(record.Tuple{string(rune('a' + i))})
		b.Append(record.Tuple{string(rune('A' + i))})
	}
	matches := []record.Pair{record.P(0, 0), record.P(5, 5), record.P(10, 10)}
	rng := rand.New(rand.NewSource(4))
	out := shuffleBoth(rng, a, b, matches)
	// The remapped pairs must point at the same content.
	for i, m := range out {
		origA := string(rune('a' + int(matches[i].A)))
		origB := string(rune('A' + int(matches[i].B)))
		if a.Rows[m.A][0] != origA || b.Rows[m.B][0] != origB {
			t.Fatalf("pair %d remap broken", i)
		}
	}
}

func TestPositiveDensityShape(t *testing.T) {
	// The generated datasets must preserve the paper's extreme skew.
	for _, tc := range []struct {
		p   Profile
		max float64
	}{
		{Scaled(CitationsPaper, 0.05), 0.01},
		{Scaled(ProductsPaper, 0.08), 0.01},
	} {
		ds := Generate(tc.p)
		if d := ds.PositiveDensity(); d > tc.max {
			t.Errorf("%s density %.5f, want <= %v", ds.Name, d, tc.max)
		}
	}
}

// TestNoiseDialAffectsSimilarity: higher noise should lower the textual
// similarity between matched pairs.
func TestNoiseDialAffectsSimilarity(t *testing.T) {
	avgSim := func(noise float64) float64 {
		p := Scaled(RestaurantsPaper, 0.3)
		p.Noise = noise
		ds := Generate(p)
		ni := ds.A.Schema.Index("name")
		sum, n := 0.0, 0
		for _, m := range ds.Truth.Matches() {
			a, b := ds.A.Rows[m.A][ni], ds.B.Rows[m.B][ni]
			// crude similarity: fraction of equal prefix length
			eq := 0
			for eq < len(a) && eq < len(b) && a[eq] == b[eq] {
				eq++
			}
			max := len(a)
			if len(b) > max {
				max = len(b)
			}
			if max > 0 {
				sum += float64(eq) / float64(max)
				n++
			}
		}
		return sum / float64(n)
	}
	clean, dirty := avgSim(0.2), avgSim(2.5)
	if clean <= dirty {
		t.Errorf("clean similarity %.3f should exceed dirty %.3f", clean, dirty)
	}
}

// TestNoiseDialDeterminism: the dial changes content but not shape.
func TestNoiseDialDeterminism(t *testing.T) {
	p := Scaled(CitationsPaper, 0.03)
	p.Noise = 1.7
	a, b := Generate(p), Generate(p)
	if a.Truth.NumMatches() != b.Truth.NumMatches() {
		t.Error("same noisy profile, different truth")
	}
}
