package feature

import (
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/datagen"
	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/similarity"
)

// TestProfilePathMatchesStringPath verifies that the profile-routed hot path
// (Compute/ComputeScratch/Vector/Vectors) produces vectors bit-identical to
// the retained string reference path (VectorString) — on the handcrafted
// edge-case dataset and on realistic generated data from every synthetic
// dataset family.
func TestProfilePathMatchesStringPath(t *testing.T) {
	datasets := []*record.Dataset{
		testDataset(),
		datagen.Generate(datagen.Scaled(datagen.ProductsPaper, 0.02)),
		datagen.Generate(datagen.Scaled(datagen.CitationsPaper, 0.02)),
		datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.2)),
	}
	for _, ds := range datasets {
		ex := NewExtractor(ds)
		rng := rand.New(rand.NewSource(3))
		var pairs []record.Pair
		for i := 0; i < 200; i++ {
			pairs = append(pairs, record.P(rng.Intn(ds.A.Len()), rng.Intn(ds.B.Len())))
		}
		scratch := similarity.NewScratch()
		rows := ex.Vectors(pairs)
		for i, p := range pairs {
			want := ex.VectorString(p)
			got := ex.Vector(p)
			gotScratch := ex.VectorScratch(p, scratch)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s: Vector(%v)[%s] = %v, string path = %v",
						ds.Name, p, ex.Name(j), got[j], want[j])
				}
				if gotScratch[j] != want[j] {
					t.Fatalf("%s: VectorScratch(%v)[%s] = %v, string path = %v",
						ds.Name, p, ex.Name(j), gotScratch[j], want[j])
				}
				if rows[i][j] != want[j] {
					t.Fatalf("%s: Vectors row %d [%s] = %v, string path = %v",
						ds.Name, i, ex.Name(j), rows[i][j], want[j])
				}
			}
			for j := range want {
				if c := ex.Compute(j, p); c != want[j] {
					t.Fatalf("%s: Compute(%s, %v) = %v, string path = %v",
						ds.Name, ex.Name(j), p, c, want[j])
				}
			}
		}
	}
}
