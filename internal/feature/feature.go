// Package feature implements Corleone's feature library (§4.1 step 3 and
// §5.1): every tuple pair is converted into a vector of similarity scores,
// one per (attribute, measure) combination appropriate for the attribute's
// type. The library also carries a per-feature cost model used by the
// Blocker's greedy rule selection (§4.3), and supports lazy single-feature
// evaluation so blocking rules can short-circuit over A×B.
package feature

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/similarity"
	"github.com/corleone-em/corleone/internal/strutil"
)

// Missing is the sentinel vector value for a feature whose inputs are
// absent. It sits below every genuine similarity (which live in [0, 1]) so
// decision-tree thresholds can route missing values down their own branch.
const Missing = -1.0

// Feature is one column of the feature vector: a similarity measure bound
// to an attribute.
type Feature struct {
	// Name is a stable human-readable identifier such as "title_jaccard_w";
	// extracted rules print it.
	Name string
	// Attr is the attribute the feature compares; AttrIdx its schema index.
	Attr    string
	AttrIdx int
	// Kind names the measure ("edit", "jaccard_w", ...).
	Kind string
	// Cost is the relative compute cost of the measure, in arbitrary units;
	// the Blocker prefers cheap rules all else equal (§4.3).
	Cost float64

	fn func(a, b string) float64
}

// Extractor binds a feature library to a dataset and computes vectors.
type Extractor struct {
	A, B     *record.Table
	features []Feature
}

// measure couples a similarity function with its name and cost.
type measure struct {
	kind string
	cost float64
	fn   func(a, b string) float64
}

func numericWrap(f func(x, y float64) float64) func(a, b string) float64 {
	return func(a, b string) float64 {
		x, okx := parseNumeric(a)
		y, oky := parseNumeric(b)
		if !okx || !oky {
			return Missing
		}
		return f(x, y)
	}
}

func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	s = strings.ReplaceAll(s, ",", "")
	if !strutil.IsNumericString(s) {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// NewExtractor builds the feature library for the dataset's schema. Text
// attributes get TF/IDF features backed by a corpus built from the values of
// that attribute across both tables, mirroring how EM systems fit IDF on the
// data being matched.
func NewExtractor(ds *record.Dataset) *Extractor {
	e := &Extractor{A: ds.A, B: ds.B}
	for idx, attr := range ds.A.Schema {
		var ms []measure
		switch attr.Type {
		case record.AttrString:
			ms = []measure{
				{"exact", 1, similarity.ExactMatch},
				{"jaro_winkler", 2, normWrap(similarity.JaroWinkler)},
				{"edit", 5, normWrap(similarity.EditSim)},
				{"jaccard_w", 3, normWrap(similarity.JaccardWords)},
				{"jaccard_3g", 4, normWrap(similarity.JaccardQGrams)},
				{"monge_elkan", 8, normWrap(similarity.MongeElkan)},
			}
		case record.AttrText:
			corpus := buildCorpus(ds, idx)
			ms = []measure{
				{"jaccard_w", 3, normWrap(similarity.JaccardWords)},
				{"overlap_w", 3, normWrap(similarity.OverlapWords)},
				{"tfidf_cos", 4, normWrap(corpus.Cosine)},
			}
		case record.AttrNumeric:
			ms = []measure{
				{"exact", 1, similarity.ExactMatch},
				{"rel_diff", 1, numericWrap(similarity.RelativeDiff)},
				{"abs_diff", 1, numericWrap(similarity.AbsDiff)},
			}
		case record.AttrCategorical:
			ms = []measure{
				{"exact", 1, similarity.ExactMatch},
				{"jaccard_3g", 4, normWrap(similarity.JaccardQGrams)},
				{"jaro_winkler", 2, normWrap(similarity.JaroWinkler)},
			}
		}
		for _, m := range ms {
			e.features = append(e.features, Feature{
				Name:    fmt.Sprintf("%s_%s", attr.Name, m.kind),
				Attr:    attr.Name,
				AttrIdx: idx,
				Kind:    m.kind,
				Cost:    m.cost,
				fn:      m.fn,
			})
		}
	}
	return e
}

// normWrap normalizes inputs and maps missing values to the Missing
// sentinel before delegating to the measure.
func normWrap(f func(a, b string) float64) func(a, b string) float64 {
	return func(a, b string) float64 {
		na, nb := strutil.Normalize(a), strutil.Normalize(b)
		if na == "" || nb == "" {
			return Missing
		}
		return f(na, nb)
	}
}

func buildCorpus(ds *record.Dataset, attrIdx int) *similarity.Corpus {
	docs := make([]string, 0, ds.A.Len()+ds.B.Len())
	for _, row := range ds.A.Rows {
		docs = append(docs, row[attrIdx])
	}
	for _, row := range ds.B.Rows {
		docs = append(docs, row[attrIdx])
	}
	return similarity.NewCorpus(docs)
}

// NumFeatures returns the width of the feature vector.
func (e *Extractor) NumFeatures() int { return len(e.features) }

// Features returns the library entries (read-only view).
func (e *Extractor) Features() []Feature { return e.features }

// Names returns the feature names in vector order.
func (e *Extractor) Names() []string {
	out := make([]string, len(e.features))
	for i, f := range e.features {
		out[i] = f.Name
	}
	return out
}

// Name returns the name of feature i.
func (e *Extractor) Name(i int) string { return e.features[i].Name }

// Cost returns the compute cost of feature i.
func (e *Extractor) Cost(i int) float64 { return e.features[i].Cost }

// Compute evaluates a single feature for pair p. This is the lazy path the
// Blocker uses when applying rules to A×B: only the features a rule actually
// references are computed.
func (e *Extractor) Compute(i int, p record.Pair) float64 {
	f := &e.features[i]
	return f.fn(e.A.Rows[p.A][f.AttrIdx], e.B.Rows[p.B][f.AttrIdx])
}

// Vector computes the full feature vector for pair p.
func (e *Extractor) Vector(p record.Pair) []float64 {
	v := make([]float64, len(e.features))
	for i := range e.features {
		v[i] = e.Compute(i, p)
	}
	return v
}

// Vectors computes feature vectors for all pairs, fanning out across
// GOMAXPROCS goroutines. Order matches the input order.
func (e *Extractor) Vectors(pairs []record.Pair) [][]float64 {
	out := make([][]float64, len(pairs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i, p := range pairs {
			out[i] = e.Vector(p)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = e.Vector(pairs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
