// Package feature implements Corleone's feature library (§4.1 step 3 and
// §5.1): every tuple pair is converted into a vector of similarity scores,
// one per (attribute, measure) combination appropriate for the attribute's
// type. The library also carries a per-feature cost model used by the
// Blocker's greedy rule selection (§4.3), and supports lazy single-feature
// evaluation so blocking rules can short-circuit over A×B.
//
// The extractor precomputes a similarity.Profile for every (record,
// attribute) cell of both tables at construction: tokenization, rune
// decoding, q-gram counting, TF/IDF weighing, and numeric parsing happen
// once per record instead of once per comparison, so the pair-scan inner
// loop — the O(|A|·|B|) hot path — is arithmetic over prebuilt structures.
// The string-based path is retained as the reference implementation; the
// profile path is bit-identical to it (enforced by tests).
package feature

import (
	"fmt"
	"sync"

	"github.com/corleone-em/corleone/internal/par"
	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/similarity"
	"github.com/corleone-em/corleone/internal/strutil"
)

// Missing is the sentinel vector value for a feature whose inputs are
// absent. It sits below every genuine similarity (which live in [0, 1]) so
// decision-tree thresholds can route missing values down their own branch.
const Missing = -1.0

// profileFn is a similarity measure over precomputed profiles. The scratch
// carries reusable DP buffers; one scratch serves one goroutine.
type profileFn func(a, b *similarity.Profile, s *similarity.Scratch) float64

// Feature is one column of the feature vector: a similarity measure bound
// to an attribute.
type Feature struct {
	// Name is a stable human-readable identifier such as "title_jaccard_w";
	// extracted rules print it.
	Name string
	// Attr is the attribute the feature compares; AttrIdx its schema index.
	Attr    string
	AttrIdx int
	// Kind names the measure ("edit", "jaccard_w", ...).
	Kind string
	// Cost is the relative compute cost of the measure, in arbitrary units;
	// the Blocker prefers cheap rules all else equal (§4.3).
	Cost float64

	fn  func(a, b string) float64
	pfn profileFn
}

// Extractor binds a feature library to a dataset and computes vectors.
// Construction precomputes per-record profiles for both tables; Compute,
// Vector, and Vectors all route through them.
type Extractor struct {
	A, B     *record.Table
	features []Feature
	// profA[attrIdx][row] / profB[attrIdx][row] are the precomputed
	// profiles; entries are nil for attributes without features.
	profA, profB [][]*similarity.Profile
	// scratch pools per-goroutine DP buffers for callers that do not
	// thread their own (single Compute/Vector calls).
	scratch sync.Pool
}

// measure couples a similarity function with its name, cost, profile fast
// path, and the profile fields that fast path needs.
type measure struct {
	kind   string
	cost   float64
	fn     func(a, b string) float64
	pfn    profileFn
	fields similarity.Fields
}

func numericWrap(f func(x, y float64) float64) func(a, b string) float64 {
	return func(a, b string) float64 {
		x, okx := strutil.ParseNumeric(a)
		y, oky := strutil.ParseNumeric(b)
		if !okx || !oky {
			return Missing
		}
		return f(x, y)
	}
}

// numericWrapP mirrors numericWrap over profiles: the parse happened at
// profile-build time.
func numericWrapP(f func(x, y float64) float64) profileFn {
	return func(a, b *similarity.Profile, _ *similarity.Scratch) float64 {
		if !a.NumericOK || !b.NumericOK {
			return Missing
		}
		return f(a.Numeric, b.Numeric)
	}
}

// NewExtractor builds the feature library for the dataset's schema and
// precomputes both tables' profiles (in parallel across rows). Text
// attributes get TF/IDF features backed by a corpus built from the values of
// that attribute across both tables, mirroring how EM systems fit IDF on the
// data being matched.
func NewExtractor(ds *record.Dataset) *Extractor {
	e := &Extractor{
		A:     ds.A,
		B:     ds.B,
		profA: make([][]*similarity.Profile, len(ds.A.Schema)),
		profB: make([][]*similarity.Profile, len(ds.A.Schema)),
	}
	e.scratch.New = func() any { return similarity.NewScratch() }
	for idx, attr := range ds.A.Schema {
		var ms []measure
		var corpus *similarity.Corpus
		switch attr.Type {
		case record.AttrString:
			ms = []measure{
				{"exact", 1, similarity.ExactMatch, exactP, 0},
				{"jaro_winkler", 2, normWrap(similarity.JaroWinkler),
					normWrapP(similarity.JaroWinklerProfiles), similarity.FieldRunes},
				{"edit", 5, normWrap(similarity.EditSim),
					normWrapP(similarity.EditSimProfiles), similarity.FieldRunes},
				{"jaccard_w", 3, normWrap(similarity.JaccardWords),
					normWrapP(noScratch(similarity.JaccardWordsProfiles)), similarity.FieldWordSet},
				{"jaccard_3g", 4, normWrap(similarity.JaccardQGrams),
					normWrapP(noScratch(similarity.JaccardQGramsProfiles)), similarity.FieldQGrams},
				{"monge_elkan", 8, normWrap(similarity.MongeElkan),
					normWrapP(similarity.MongeElkanProfiles), similarity.FieldTokenRunes},
			}
		case record.AttrText:
			corpus = buildCorpus(ds, idx)
			ms = []measure{
				{"jaccard_w", 3, normWrap(similarity.JaccardWords),
					normWrapP(noScratch(similarity.JaccardWordsProfiles)), similarity.FieldWordSet},
				{"overlap_w", 3, normWrap(similarity.OverlapWords),
					normWrapP(noScratch(similarity.OverlapWordsProfiles)), similarity.FieldWordSet},
				{"tfidf_cos", 4, normWrap(corpus.Cosine),
					normWrapP(noScratch(corpus.CosineProfiles)), similarity.FieldWordSet},
			}
		case record.AttrNumeric:
			ms = []measure{
				{"exact", 1, similarity.ExactMatch, exactP, 0},
				{"rel_diff", 1, numericWrap(similarity.RelativeDiff),
					numericWrapP(similarity.RelativeDiff), similarity.FieldNumeric},
				{"abs_diff", 1, numericWrap(similarity.AbsDiff),
					numericWrapP(similarity.AbsDiff), similarity.FieldNumeric},
			}
		case record.AttrCategorical:
			ms = []measure{
				{"exact", 1, similarity.ExactMatch, exactP, 0},
				{"jaccard_3g", 4, normWrap(similarity.JaccardQGrams),
					normWrapP(noScratch(similarity.JaccardQGramsProfiles)), similarity.FieldQGrams},
				{"jaro_winkler", 2, normWrap(similarity.JaroWinkler),
					normWrapP(similarity.JaroWinklerProfiles), similarity.FieldRunes},
			}
		}
		if len(ms) == 0 {
			continue
		}
		var fields similarity.Fields
		for _, m := range ms {
			fields |= m.fields
			e.features = append(e.features, Feature{
				Name:    fmt.Sprintf("%s_%s", attr.Name, m.kind),
				Attr:    attr.Name,
				AttrIdx: idx,
				Kind:    m.kind,
				Cost:    m.cost,
				fn:      m.fn,
				pfn:     m.pfn,
			})
		}
		e.profA[idx] = buildProfiles(ds.A, idx, fields, corpus)
		e.profB[idx] = buildProfiles(ds.B, idx, fields, corpus)
	}
	return e
}

// buildProfiles precomputes the profiles of one attribute column, fanned
// out across rows; corpus (non-nil for text attributes) attaches the
// TF/IDF-weighted vector.
func buildProfiles(t *record.Table, attrIdx int, fields similarity.Fields,
	corpus *similarity.Corpus) []*similarity.Profile {

	out := make([]*similarity.Profile, t.Len())
	par.For(t.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := similarity.NewProfile(t.Rows[i][attrIdx], fields)
			if corpus != nil {
				corpus.WeighProfile(p)
			}
			out[i] = p
		}
	})
	return out
}

// exactP adapts ExactMatchProfiles to the profileFn shape (no scratch, no
// normWrap: exact match defines its own missing-value semantics).
func exactP(a, b *similarity.Profile, _ *similarity.Scratch) float64 {
	return similarity.ExactMatchProfiles(a, b)
}

// noScratch adapts scratch-free profile measures to the profileFn shape.
func noScratch(f func(a, b *similarity.Profile) float64) profileFn {
	return func(a, b *similarity.Profile, _ *similarity.Scratch) float64 {
		return f(a, b)
	}
}

// normWrap normalizes inputs and maps missing values to the Missing
// sentinel before delegating to the measure.
func normWrap(f func(a, b string) float64) func(a, b string) float64 {
	return func(a, b string) float64 {
		na, nb := strutil.Normalize(a), strutil.Normalize(b)
		if na == "" || nb == "" {
			return Missing
		}
		return f(na, nb)
	}
}

// normWrapP mirrors normWrap over profiles: normalization happened at
// profile-build time, so only the missing-value gate remains.
func normWrapP(f profileFn) profileFn {
	return func(a, b *similarity.Profile, s *similarity.Scratch) float64 {
		if a.Norm == "" || b.Norm == "" {
			return Missing
		}
		return f(a, b, s)
	}
}

func buildCorpus(ds *record.Dataset, attrIdx int) *similarity.Corpus {
	docs := make([]string, 0, ds.A.Len()+ds.B.Len())
	for _, row := range ds.A.Rows {
		docs = append(docs, row[attrIdx])
	}
	for _, row := range ds.B.Rows {
		docs = append(docs, row[attrIdx])
	}
	return similarity.NewCorpus(docs)
}

// NumFeatures returns the width of the feature vector.
func (e *Extractor) NumFeatures() int { return len(e.features) }

// Features returns the library entries (read-only view).
func (e *Extractor) Features() []Feature { return e.features }

// Names returns the feature names in vector order.
func (e *Extractor) Names() []string {
	out := make([]string, len(e.features))
	for i, f := range e.features {
		out[i] = f.Name
	}
	return out
}

// Name returns the name of feature i.
func (e *Extractor) Name(i int) string { return e.features[i].Name }

// Cost returns the compute cost of feature i.
func (e *Extractor) Cost(i int) float64 { return e.features[i].Cost }

// Profiles returns the precomputed profile columns backing feature i — one
// per row of table A and table B respectively. Index builders (the
// blocker's similarity-join planner) consume them directly; callers must
// treat both slices as read-only.
func (e *Extractor) Profiles(i int) (a, b []*similarity.Profile) {
	f := &e.features[i]
	return e.profA[f.AttrIdx], e.profB[f.AttrIdx]
}

// Compute evaluates a single feature for pair p via the profile fast path.
// This is the lazy path the Blocker uses when applying rules to A×B: only
// the features a rule actually references are computed.
func (e *Extractor) Compute(i int, p record.Pair) float64 {
	s := e.scratch.Get().(*similarity.Scratch)
	v := e.ComputeScratch(i, p, s)
	e.scratch.Put(s)
	return v
}

// ComputeScratch evaluates a single feature with a caller-owned scratch —
// the form the parallel scan loops use, one scratch per worker.
func (e *Extractor) ComputeScratch(i int, p record.Pair, s *similarity.Scratch) float64 {
	f := &e.features[i]
	return f.pfn(e.profA[f.AttrIdx][p.A], e.profB[f.AttrIdx][p.B], s)
}

// ComputeString evaluates a single feature from the raw strings — the
// reference path the profile fast path is verified against (and the
// before/after baseline for the benchmarks).
func (e *Extractor) ComputeString(i int, p record.Pair) float64 {
	f := &e.features[i]
	return f.fn(e.A.Rows[p.A][f.AttrIdx], e.B.Rows[p.B][f.AttrIdx])
}

// Vector computes the full feature vector for pair p.
func (e *Extractor) Vector(p record.Pair) []float64 {
	s := e.scratch.Get().(*similarity.Scratch)
	v := e.VectorScratch(p, s)
	e.scratch.Put(s)
	return v
}

// VectorScratch computes the full feature vector with a caller-owned
// scratch.
func (e *Extractor) VectorScratch(p record.Pair, s *similarity.Scratch) []float64 {
	v := make([]float64, len(e.features))
	for i := range e.features {
		v[i] = e.ComputeScratch(i, p, s)
	}
	return v
}

// VectorString computes the full feature vector via the string-based
// reference path.
func (e *Extractor) VectorString(p record.Pair) []float64 {
	v := make([]float64, len(e.features))
	for i := range e.features {
		v[i] = e.ComputeString(i, p)
	}
	return v
}

// Vectors computes feature vectors for all pairs, fanning out across
// GOMAXPROCS goroutines with one scratch per worker. Order matches the
// input order.
func (e *Extractor) Vectors(pairs []record.Pair) [][]float64 {
	out := make([][]float64, len(pairs))
	par.For(len(pairs), func(lo, hi int) {
		s := similarity.NewScratch()
		for i := lo; i < hi; i++ {
			out[i] = e.VectorScratch(pairs[i], s)
		}
	})
	return out
}
