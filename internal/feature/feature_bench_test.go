package feature

import (
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/datagen"
	"github.com/corleone-em/corleone/internal/record"
)

func benchPairs(ds *record.Dataset, n int) []record.Pair {
	rng := rand.New(rand.NewSource(7))
	pairs := make([]record.Pair, n)
	for i := range pairs {
		pairs[i] = record.P(rng.Intn(ds.A.Len()), rng.Intn(ds.B.Len()))
	}
	return pairs
}

var sinkRows [][]float64

// BenchmarkVectorsString measures the pre-optimization hot path: every
// feature re-normalizes, re-tokenizes, and re-allocates per pair, serially.
func BenchmarkVectorsString(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ProductsPaper, 0.02))
	ex := NewExtractor(ds)
	pairs := benchPairs(ds, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := make([][]float64, len(pairs))
		for j, p := range pairs {
			rows[j] = ex.VectorString(p)
		}
		sinkRows = rows
	}
	b.ReportMetric(float64(len(pairs)), "pairs/op")
}

// BenchmarkVectors measures the profile-routed parallel path over the same
// pair batch.
func BenchmarkVectors(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ProductsPaper, 0.02))
	ex := NewExtractor(ds)
	pairs := benchPairs(ds, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows = ex.Vectors(pairs)
	}
	b.ReportMetric(float64(len(pairs)), "pairs/op")
}

// BenchmarkNewExtractor measures the one-time profile construction cost that
// the per-pair wins above are paid for with.
func BenchmarkNewExtractor(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ProductsPaper, 0.02))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := NewExtractor(ds)
		sinkRows = [][]float64{ex.Vector(record.P(0, 0))}
	}
}
