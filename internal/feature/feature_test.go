package feature

import (
	"testing"

	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/strutil"
)

func testDataset() *record.Dataset {
	schema := record.Schema{
		{Name: "name", Type: record.AttrString},
		{Name: "desc", Type: record.AttrText},
		{Name: "price", Type: record.AttrNumeric},
		{Name: "code", Type: record.AttrCategorical},
	}
	a := record.NewTable("a", schema)
	b := record.NewTable("b", schema)
	a.Append(record.Tuple{"kingston hyperx", "fast memory kit", "49.99", "KH123"})
	a.Append(record.Tuple{"sony camera", "compact zoom lens", "299.00", "SC900"})
	b.Append(record.Tuple{"Kingston HyperX", "fast memory kit deluxe", "$49.99", "kh123"})
	b.Append(record.Tuple{"panasonic tv", "", "", ""})
	return &record.Dataset{
		Name: "t", A: a, B: b,
		Truth: record.NewGroundTruth([]record.Pair{record.P(0, 0)}),
		Seeds: []record.Labeled{
			{Pair: record.P(0, 0), Match: true}, {Pair: record.P(1, 0), Match: true},
			{Pair: record.P(0, 1), Match: false}, {Pair: record.P(1, 1), Match: false},
		},
	}
}

func TestNewExtractorFeatureSet(t *testing.T) {
	ex := NewExtractor(testDataset())
	// string: 6 measures, text: 3, numeric: 3, categorical: 3.
	if got := ex.NumFeatures(); got != 15 {
		t.Errorf("NumFeatures = %d, want 15", got)
	}
	names := map[string]bool{}
	for _, n := range ex.Names() {
		if names[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		names[n] = true
	}
	for _, want := range []string{"name_exact", "name_edit", "desc_tfidf_cos",
		"price_rel_diff", "price_abs_diff", "code_exact"} {
		if !names[want] {
			t.Errorf("missing feature %q", want)
		}
	}
}

func TestVectorValues(t *testing.T) {
	ds := testDataset()
	ex := NewExtractor(ds)
	v := ex.Vector(record.P(0, 0)) // the matching pair
	byName := map[string]float64{}
	for i, n := range ex.Names() {
		byName[n] = v[i]
	}
	if byName["name_exact"] != 1 {
		t.Errorf("name_exact = %v, want 1 (case-insensitive)", byName["name_exact"])
	}
	if byName["price_rel_diff"] != 1 {
		t.Errorf("price_rel_diff = %v, want 1 ($ prefix stripped)", byName["price_rel_diff"])
	}
	if byName["price_abs_diff"] != 0 {
		t.Errorf("price_abs_diff = %v, want 0", byName["price_abs_diff"])
	}
	if byName["code_exact"] != 1 {
		t.Errorf("code_exact = %v, want 1", byName["code_exact"])
	}
}

func TestMissingValuesYieldSentinel(t *testing.T) {
	ds := testDataset()
	ex := NewExtractor(ds)
	v := ex.Vector(record.P(0, 1)) // B row has empty desc/price/code
	byName := map[string]float64{}
	for i, n := range ex.Names() {
		byName[n] = v[i]
	}
	for _, f := range []string{"desc_jaccard_w", "price_rel_diff", "code_jaro_winkler"} {
		if byName[f] != Missing {
			t.Errorf("%s = %v, want Missing (%v)", f, byName[f], Missing)
		}
	}
}

func TestSimilarityRangeOrMissing(t *testing.T) {
	ds := testDataset()
	ex := NewExtractor(ds)
	for a := 0; a < ds.A.Len(); a++ {
		for b := 0; b < ds.B.Len(); b++ {
			v := ex.Vector(record.P(a, b))
			for i, x := range v {
				name := ex.Name(i)
				if name == "price_abs_diff" {
					continue // unbounded by design
				}
				if x != Missing && (x < 0 || x > 1) {
					t.Errorf("feature %s on (%d,%d) = %v outside [0,1]", name, a, b, x)
				}
			}
		}
	}
}

func TestComputeMatchesVector(t *testing.T) {
	ds := testDataset()
	ex := NewExtractor(ds)
	p := record.P(1, 1)
	v := ex.Vector(p)
	for i := range v {
		if got := ex.Compute(i, p); got != v[i] {
			t.Errorf("Compute(%d) = %v, Vector[%d] = %v", i, got, i, v[i])
		}
	}
}

func TestVectorsParallelMatchesSequential(t *testing.T) {
	ds := testDataset()
	ex := NewExtractor(ds)
	var pairs []record.Pair
	for a := 0; a < ds.A.Len(); a++ {
		for b := 0; b < ds.B.Len(); b++ {
			pairs = append(pairs, record.P(a, b))
		}
	}
	got := ex.Vectors(pairs)
	for i, p := range pairs {
		want := ex.Vector(p)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("Vectors[%d][%d] = %v, want %v", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestCostsPositive(t *testing.T) {
	ex := NewExtractor(testDataset())
	for i := 0; i < ex.NumFeatures(); i++ {
		if ex.Cost(i) <= 0 {
			t.Errorf("feature %s has non-positive cost", ex.Name(i))
		}
	}
}

func TestParseNumeric(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{"$19.99", 19.99, true},
		{"1,234.5", 1234.5, true},
		{" 7 ", 7, true},
		{"", 0, false},
		{"abc", 0, false},
	}
	for _, c := range cases {
		got, ok := strutil.ParseNumeric(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseNumeric(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestFeaturesAccessor(t *testing.T) {
	ex := NewExtractor(testDataset())
	fs := ex.Features()
	if len(fs) != ex.NumFeatures() {
		t.Fatalf("Features() = %d entries", len(fs))
	}
	for i, f := range fs {
		if f.Name != ex.Name(i) || f.Cost != ex.Cost(i) {
			t.Errorf("feature %d inconsistent: %+v", i, f)
		}
		if f.AttrIdx < 0 || f.Attr == "" || f.Kind == "" {
			t.Errorf("feature %d incomplete: %+v", i, f)
		}
	}
}

func TestVectorsParallelLargeBatch(t *testing.T) {
	// Enough pairs to exercise the multi-worker chunking path.
	ds := testDataset()
	ex := NewExtractor(ds)
	var pairs []record.Pair
	for i := 0; i < 500; i++ {
		pairs = append(pairs, record.P(i%ds.A.Len(), i%ds.B.Len()))
	}
	got := ex.Vectors(pairs)
	if len(got) != len(pairs) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range pairs {
		want := ex.Vector(pairs[i])
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Empty input is fine.
	if out := ex.Vectors(nil); len(out) != 0 {
		t.Error("Vectors(nil) should be empty")
	}
}
