// Package matcher implements §5: training a random-forest matcher over the
// candidate set C with crowdsourced active learning, then applying it to
// predict matches. The heavy lifting — example selection, confidence
// monitoring, stopping — lives in package active; the matcher owns the
// "train on everything labeled so far, then predict C" protocol.
package matcher

import (
	"github.com/corleone-em/corleone/internal/active"
	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/forest"
	"github.com/corleone-em/corleone/internal/record"
)

// Config wraps the active-learning configuration.
type Config struct {
	Active active.Config
}

// Defaults returns the paper's configuration.
func Defaults() Config { return Config{Active: active.Defaults()} }

// Result is a trained, applied matcher.
type Result struct {
	// Forest is the selected classifier.
	Forest *forest.Forest
	// Predictions[i] is the match prediction for the i-th candidate pair.
	Predictions []bool
	// PositiveCount is the number of predicted matches.
	PositiveCount int
	// Training is every labeled example the matcher trained on.
	Training []record.Labeled
	// Trace is the active-learning diagnostic trace (Figure 3 series).
	Trace active.Trace
}

// Run trains a matcher on the candidate pool (pairs, X) starting from the
// given labeled examples (user seeds plus anything the crowd has already
// labeled, per §5.1), then applies it to every candidate.
func Run(runner *crowd.Runner, pairs []record.Pair, X [][]float64,
	initial []record.Labeled, initialX [][]float64, cfg Config) (*Result, error) {

	learned, err := active.Learn(runner, pairs, X, initial, initialX, cfg.Active)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Forest:      learned.Forest,
		Predictions: make([]bool, len(pairs)),
		Training:    learned.Training,
		Trace:       learned.Trace,
	}
	for i, v := range X {
		if learned.Forest.Predict(v) {
			res.Predictions[i] = true
			res.PositiveCount++
		}
	}
	return res, nil
}

// PredictedMatches returns the candidate pairs predicted positive.
func (r *Result) PredictedMatches(pairs []record.Pair) []record.Pair {
	out := make([]record.Pair, 0, r.PositiveCount)
	for i, pos := range r.Predictions {
		if pos {
			out = append(out, pairs[i])
		}
	}
	return out
}
