package matcher

import (
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/record"
)

func makePool(n int, seed int64) (pairs []record.Pair, X [][]float64,
	truth *record.GroundTruth, seeds []record.Labeled, seedX [][]float64) {

	rng := rand.New(rand.NewSource(seed))
	var matches []record.Pair
	for i := 0; i < n; i++ {
		p := record.P(i, i)
		pairs = append(pairs, p)
		if rng.Float64() < 0.1 {
			X = append(X, []float64{0.7 + 0.3*rng.Float64(), rng.Float64()})
			matches = append(matches, p)
		} else {
			X = append(X, []float64{0.6 * rng.Float64(), rng.Float64()})
		}
	}
	truth = record.NewGroundTruth(matches)
	seeds = []record.Labeled{
		{Pair: record.P(n, n), Match: true},
		{Pair: record.P(n+1, n+1), Match: true},
		{Pair: record.P(n+2, n+2), Match: false},
		{Pair: record.P(n+3, n+3), Match: false},
	}
	seedX = [][]float64{{0.9, 0.5}, {0.8, 0.2}, {0.1, 0.9}, {0.3, 0.4}}
	return
}

func TestRunTrainsAndPredicts(t *testing.T) {
	pairs, X, truth, seeds, seedX := makePool(1500, 1)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	runner.SeedLabels(seeds)
	res, err := Run(runner, pairs, X, seeds, seedX, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != len(pairs) {
		t.Fatalf("predictions length %d != %d", len(res.Predictions), len(pairs))
	}
	// Count prediction errors against truth.
	errs := 0
	for i, p := range pairs {
		if res.Predictions[i] != truth.Match(p) {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(pairs)); frac > 0.03 {
		t.Errorf("error rate %.3f, want <= 0.03", frac)
	}
	// PositiveCount is consistent.
	count := 0
	for _, p := range res.Predictions {
		if p {
			count++
		}
	}
	if count != res.PositiveCount {
		t.Errorf("PositiveCount = %d, counted %d", res.PositiveCount, count)
	}
	if res.Forest == nil || res.Trace.Iterations == 0 {
		t.Error("missing forest or trace")
	}
}

func TestPredictedMatches(t *testing.T) {
	pairs := []record.Pair{record.P(0, 0), record.P(1, 1), record.P(2, 2)}
	res := &Result{Predictions: []bool{true, false, true}, PositiveCount: 2}
	got := res.PredictedMatches(pairs)
	if len(got) != 2 || got[0] != record.P(0, 0) || got[1] != record.P(2, 2) {
		t.Errorf("PredictedMatches = %v", got)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	runner := crowd.NewRunner(&crowd.Oracle{Truth: record.NewGroundTruth(nil)}, 0.01)
	if _, err := Run(runner, nil, nil, nil, nil, Defaults()); err == nil {
		t.Error("no seeds should error")
	}
}
