// Package locator implements §7, the Difficult Pairs' Locator: extract
// highly precise positive AND negative rules from the current matcher's
// forest, crowd-certify them, and remove every pair they cover — those
// pairs are "easy" because a precise rule already decides them. What
// remains is the difficult set C', on which the next iteration trains a
// fresh matcher.
package locator

import (
	"math/rand"

	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/forest"
	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/ruleeval"
	"github.com/corleone-em/corleone/internal/tree"
)

// Config carries the §7 parameters.
type Config struct {
	// TopK is the number of rules of each polarity sent to crowd
	// evaluation (paper: 20, as elsewhere).
	TopK int
	// MinDifficult is the smallest difficult set worth iterating on
	// (paper: 200).
	MinDifficult int
	// MaxFraction: if |C'| >= MaxFraction * |C| no meaningful reduction
	// happened and iteration stops (paper: 0.9).
	MaxFraction float64
	// RuleEval configures crowd certification of the extracted rules.
	RuleEval ruleeval.Config
	// Seed drives rule-evaluation sampling.
	Seed int64
}

// Defaults returns the paper's configuration.
func Defaults() Config {
	return Config{
		TopK:         20,
		MinDifficult: 200,
		MaxFraction:  0.9,
		RuleEval:     ruleeval.Defaults(),
		Seed:         1,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.MinDifficult <= 0 {
		c.MinDifficult = d.MinDifficult
	}
	if c.MaxFraction <= 0 {
		c.MaxFraction = d.MaxFraction
	}
	return c
}

// Result reports the located difficult set.
type Result struct {
	// DifficultIdx are indices into the candidate set of the pairs not
	// covered by any certified rule.
	DifficultIdx []int
	// NegativeRules and PositiveRules are the certified rules applied.
	NegativeRules []tree.Rule
	PositiveRules []tree.Rule
	// Evaluated records all crowd evaluations (for the rule audit).
	Evaluated []ruleeval.Result
	// Proceed reports whether the difficult set passes the §7 size tests
	// and a new iteration should run.
	Proceed bool
	// Reason explains a false Proceed.
	Reason string
}

// Locate runs the Difficult Pairs' Locator for matcher f over the candidate
// set (pairs, X). known supplies already-labeled examples for the §4.2
// upper-bound ranking.
func Locate(rng *rand.Rand, runner *crowd.Runner, f *forest.Forest,
	pairs []record.Pair, X [][]float64, known []record.Labeled, cfg Config) *Result {

	cfg = cfg.withDefaults()
	res := &Result{}

	negRules, posRules := f.Rules()
	pairIdx := make(map[record.Pair]int, len(pairs))
	for i, p := range pairs {
		pairIdx[p] = i
	}
	knownPos := map[int]bool{}
	knownNeg := map[int]bool{}
	for _, l := range known {
		if i, ok := pairIdx[l.Pair]; ok {
			if l.Match {
				knownPos[i] = true
			} else {
				knownNeg[i] = true
			}
		}
	}

	// §7 step 1: certify top-k negative rules (contradicted by known
	// positives) and top-k positive rules (contradicted by known
	// negatives) exactly as in §4.2.
	topNeg := ruleeval.SelectTopK(ruleeval.MakeCandidates(negRules, X), knownPos, cfg.TopK)
	topPos := ruleeval.SelectTopK(ruleeval.MakeCandidates(posRules, X), knownNeg, cfg.TopK)

	evalNeg := ruleeval.EvaluateJoint(rng, runner, pairs, topNeg, cfg.RuleEval)
	evalPos := ruleeval.EvaluateJoint(rng, runner, pairs, topPos, cfg.RuleEval)
	res.Evaluated = append(append([]ruleeval.Result{}, evalNeg...), evalPos...)

	covered := make([]bool, len(pairs))
	for _, ev := range evalNeg {
		if !ev.Kept {
			continue
		}
		res.NegativeRules = append(res.NegativeRules, ev.Candidate.Rule)
		for _, idx := range ev.Candidate.Coverage {
			covered[idx] = true
		}
	}
	for _, ev := range evalPos {
		if !ev.Kept {
			continue
		}
		res.PositiveRules = append(res.PositiveRules, ev.Candidate.Rule)
		for _, idx := range ev.Candidate.Coverage {
			covered[idx] = true
		}
	}

	// §7 step 2: the uncovered pairs are the difficult set.
	for i := range pairs {
		if !covered[i] {
			res.DifficultIdx = append(res.DifficultIdx, i)
		}
	}

	// §7 termination tests.
	switch {
	case len(res.DifficultIdx) < cfg.MinDifficult:
		res.Reason = "difficult set too small"
	case float64(len(res.DifficultIdx)) >= cfg.MaxFraction*float64(len(pairs)):
		res.Reason = "no significant reduction"
	default:
		res.Proceed = true
	}
	return res
}
