package locator

import (
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/forest"
	"github.com/corleone-em/corleone/internal/record"
)

// build creates a candidate set with an "easy" region (x0 extreme) and a
// "difficult" band (x0 near 0.5), plus a forest trained to separate on x0.
func build(n int, seed int64) (pairs []record.Pair, X [][]float64,
	truth *record.GroundTruth, f *forest.Forest, known []record.Labeled,
	difficult map[record.Pair]bool) {

	rng := rand.New(rand.NewSource(seed))
	var matches []record.Pair
	difficult = map[record.Pair]bool{}
	for i := 0; i < n; i++ {
		p := record.P(i, i)
		pairs = append(pairs, p)
		r := rng.Float64()
		switch {
		case r < 0.05: // clear match
			X = append(X, []float64{0.6 + 0.4*rng.Float64()})
			matches = append(matches, p)
		case r < 0.15: // borderline band: half are matches
			X = append(X, []float64{0.45 + 0.1*rng.Float64()})
			difficult[p] = true
			if rng.Intn(2) == 0 {
				matches = append(matches, p)
			}
		default: // clear non-match
			X = append(X, []float64{0.4 * rng.Float64()})
		}
	}
	truth = record.NewGroundTruth(matches)
	// Train on clear examples only.
	var tx [][]float64
	var ty []bool
	// Training spans right up to the band edges so split thresholds land
	// near 0.5 instead of mid-gap.
	for i := 0; i < 300; i++ {
		pos := i%2 == 0
		if pos {
			tx = append(tx, []float64{0.55 + 0.45*rng.Float64()})
		} else {
			tx = append(tx, []float64{0.45 * rng.Float64()})
		}
		ty = append(ty, pos)
	}
	cfg := forest.Defaults()
	cfg.Seed = seed
	f = forest.Train(tx, ty, cfg)
	for i := 0; i < 30; i++ {
		known = append(known, record.Labeled{Pair: pairs[i], Match: truth.Match(pairs[i])})
	}
	return
}

func TestLocateFindsDifficultBand(t *testing.T) {
	pairs, X, truth, f, known, difficult := build(5000, 1)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	rng := rand.New(rand.NewSource(2))
	res := Locate(rng, runner, f, pairs, X, known, Defaults())
	if len(res.NegativeRules) == 0 && len(res.PositiveRules) == 0 {
		t.Fatal("no rules certified")
	}
	// The difficult set should be dominated by the borderline band.
	inBand := 0
	for _, di := range res.DifficultIdx {
		if difficult[pairs[di]] {
			inBand++
		}
	}
	if len(res.DifficultIdx) == 0 {
		t.Fatal("no difficult pairs located")
	}
	frac := float64(inBand) / float64(len(res.DifficultIdx))
	if frac < 0.4 {
		t.Errorf("only %.2f of difficult set is the borderline band", frac)
	}
}

func TestLocateTerminationSmallSet(t *testing.T) {
	pairs, X, truth, f, known, _ := build(300, 3)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	rng := rand.New(rand.NewSource(4))
	cfg := Defaults()
	cfg.MinDifficult = 100000 // force the "too small" branch
	res := Locate(rng, runner, f, pairs, X, known, cfg)
	if res.Proceed {
		t.Error("should not proceed when difficult set is below MinDifficult")
	}
	if res.Reason == "" {
		t.Error("missing reason")
	}
}

func TestLocateTerminationNoReduction(t *testing.T) {
	// A forest with no precise rules (random labels) covers nothing;
	// everything stays difficult -> "no significant reduction".
	rng := rand.New(rand.NewSource(5))
	var pairs []record.Pair
	var X [][]float64
	var matches []record.Pair
	for i := 0; i < 1000; i++ {
		p := record.P(i, i)
		pairs = append(pairs, p)
		X = append(X, []float64{rng.Float64()})
		if rng.Intn(2) == 0 {
			matches = append(matches, p) // label independent of feature
		}
	}
	truth := record.NewGroundTruth(matches)
	var tx [][]float64
	var ty []bool
	for i := 0; i < 200; i++ {
		tx = append(tx, []float64{rng.Float64()})
		ty = append(ty, rng.Intn(2) == 0)
	}
	fcfg := forest.Defaults()
	fcfg.Seed = 6
	f := forest.Train(tx, ty, fcfg)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	cfg := Defaults()
	cfg.MinDifficult = 10
	res := Locate(rand.New(rand.NewSource(7)), runner, f, pairs, X, nil, cfg)
	// On unlearnable data, certification must reject nearly every rule:
	// only tiny exhaustively-verified lucky rules can pass, so the bulk of
	// the set stays difficult.
	if got := len(res.DifficultIdx); got < len(pairs)/2 {
		t.Errorf("only %d of %d pairs remain difficult on random labels", got, len(pairs))
	}
}

func TestLocateProceedPath(t *testing.T) {
	pairs, X, truth, f, known, _ := build(5000, 8)
	runner := crowd.NewRunner(&crowd.Oracle{Truth: truth}, 0.01)
	cfg := Defaults()
	cfg.MinDifficult = 10
	res := Locate(rand.New(rand.NewSource(9)), runner, f, pairs, X, known, cfg)
	if !res.Proceed {
		t.Errorf("expected Proceed, got reason %q (|difficult|=%d of %d)",
			res.Reason, len(res.DifficultIdx), len(pairs))
	}
}
