// Package par provides the one parallelism primitive the compute layers
// share: a chunked parallel for. Corleone's hot loops (feature vectors,
// blocking-rule scans, forest training, entropy ranking) are all
// embarrassingly parallel over an index range; centralizing the fan-out
// keeps the chunking policy — and the guarantee that results land at their
// own index, preserving deterministic output order — in one place.
package par

import (
	"runtime"
	"sync"
)

// For partitions [0, n) into at most GOMAXPROCS contiguous chunks and runs
// fn(lo, hi) on each, concurrently, returning when all chunks are done.
// fn must only write to state owned by its own index range (e.g. out[i] for
// lo <= i < hi); For itself imposes no ordering between chunks.
//
// Small inputs (n <= 1) and single-CPU runs execute inline with no
// goroutine overhead. The zero-work case (n <= 0) is a no-op.
func For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
