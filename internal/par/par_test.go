package par

import (
	"runtime"
	"testing"
)

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1000} {
		hits := make([]int, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForNonPositive(t *testing.T) {
	called := false
	For(0, func(lo, hi int) { called = true })
	For(-5, func(lo, hi int) { called = true })
	if called {
		t.Error("fn must not run for n <= 0")
	}
}

func TestForSingleCore(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	var order []int
	For(10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	// With one worker the whole range arrives as a single in-order chunk.
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}
