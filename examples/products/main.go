// Products: the paper's motivating e-commerce scenario (§1, Example 3.1) —
// match electronics products between two retailers' catalogs. The Cartesian
// product is large enough that the Blocker triggers: it learns blocking
// rules from the crowd and shrinks the pair space by orders of magnitude
// before matching starts. The example prints the blocking rules the crowd
// certified, in the paper's Figure 2.c style.
package main

import (
	"fmt"

	corleone "github.com/corleone-em/corleone"
	"github.com/corleone-em/corleone/internal/feature"
)

func main() {
	ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.ProductsProfile, 0.12))
	crowd := corleone.NewSimulatedCrowd(ds.Truth, 0.05, 9)

	cfg := corleone.DefaultConfig()
	cfg.Seed = 13
	cfg.PricePerQuestion = 0.02 // product questions pay more (§9)
	// Scale t_B to this dataset so blocking triggers as in the paper.
	cfg.Blocker.TB = int(ds.CartesianSize() / 6)

	res, err := corleone.Run(ds, crowd, cfg)
	if err != nil {
		panic(err)
	}

	blk := res.Blocking
	fmt.Printf("Cartesian product: %d pairs\n", blk.CartesianSize)
	fmt.Printf("blocking sample S: %d pairs, %d candidate rules extracted\n",
		blk.SampleSize, blk.CandidateRuleCount)
	fmt.Printf("umbrella set:      %d pairs (%.3f%% of A×B)\n",
		len(blk.Candidates), 100*float64(len(blk.Candidates))/float64(blk.CartesianSize))

	// Render the applied blocking rules with feature names.
	ex := feature.NewExtractor(ds)
	fmt.Println("\ncrowd-certified blocking rules applied:")
	for i, r := range blk.Selected {
		fmt.Printf("  R%d: %s\n", i+1, r.Render(ex.Name))
	}

	fmt.Printf("\nmatching: %d matches found, estimated F1 %.1f%%, true %v\n",
		len(res.Matches), res.EstimatedF1, res.True)
	fmt.Printf("total crowd cost: $%.2f over %d pairs\n",
		res.Accounting.Cost, res.Accounting.Pairs)
}
