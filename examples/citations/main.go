// Citations: DBLP-vs-Scholar style bibliographic matching with the full
// iterative loop (§7): match, estimate, locate difficult pairs, match
// again. The example prints the per-phase trace in the shape of the
// paper's Table 4.
package main

import (
	"fmt"
	"strings"

	corleone "github.com/corleone-em/corleone"
)

func main() {
	ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.CitationsProfile, 0.1))
	crowd := corleone.NewSimulatedCrowd(ds.Truth, 0.05, 21)

	cfg := corleone.DefaultConfig()
	cfg.Seed = 19
	cfg.Blocker.TB = int(ds.CartesianSize() / 20)

	res, err := corleone.Run(ds, crowd, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%s: |A|=%d |B|=%d, %d true matches, blocking kept %d pairs\n\n",
		ds.Name, ds.A.Len(), ds.B.Len(), ds.Truth.NumMatches(),
		len(res.Blocking.Candidates))

	fmt.Printf("%-14s %8s %8s %8s %8s %12s\n",
		"Phase", "# Pairs", "P", "R", "F1", "Reduced Set")
	fmt.Println(strings.Repeat("-", 64))
	for _, ph := range res.Phases {
		p, r, f1 := "", "", ""
		switch {
		case ph.HasTrue:
			p, r, f1 = pct(ph.True.P), pct(ph.True.R), pct(ph.True.F1)
		case ph.HasEst:
			p, r, f1 = pct(ph.Estimated.P), pct(ph.Estimated.R), pct(ph.Estimated.F1)
		}
		reduced := ""
		if strings.HasPrefix(ph.Name, "Reduction") {
			reduced = fmt.Sprintf("%d", ph.ReducedSetSize)
		}
		fmt.Printf("%-14s %8d %8s %8s %8s %12s\n",
			ph.Name, ph.PairsLabeled, p, r, f1, reduced)
	}

	fmt.Printf("\nstopped: %s\n", res.StopReason)
	fmt.Printf("final: %d matches, true %v, cost $%.2f\n",
		len(res.Matches), res.True, res.Accounting.Cost)
}

func pct(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
