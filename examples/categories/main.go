// Categories: the paper's Example 3.1 — a retailer must match products in
// hundreds of categories, each effectively its own EM problem. With
// developer-driven solutions this needs per-category engineering; with
// Corleone the SAME hands-off pipeline runs across every category
// unchanged: per category, only the two tables and the four illustrating
// examples differ. This example sweeps several synthetic categories and
// aggregates accuracy and spend, the way an enterprise dashboard would.
package main

import (
	"fmt"

	corleone "github.com/corleone-em/corleone"
)

func main() {
	categories := []string{
		"computer memory", "storage", "networking", "peripherals",
		"audio", "photography",
	}
	fmt.Printf("%-18s %8s %8s %8s %9s %8s\n",
		"category", "pairs", "matches", "F1", "cost", "#labeled")
	var totalCost float64
	var totalLabeled int
	for i, cat := range categories {
		// Each category is its own dataset: same generator, distinct seed,
		// as if the catalog were partitioned by category.
		profile := corleone.ScaledProfile(corleone.ProductsProfile, 0.05)
		profile.Seed = int64(100 + i)
		ds := corleone.GenerateDataset(profile)
		ds.Name = cat

		cfg := corleone.DefaultConfig()
		cfg.Seed = int64(7 + i)
		cfg.PricePerQuestion = 0.02
		cfg.Blocker.TB = int(ds.CartesianSize() / 5)

		crowd := corleone.NewSimulatedCrowd(ds.Truth, 0.05, int64(1000+i))
		res, err := corleone.Run(ds, crowd, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-18s %8d %8d %8.1f %8.2f$ %8d\n",
			cat, ds.CartesianSize(), ds.Truth.NumMatches(),
			res.True.F1, res.Accounting.Cost, res.Accounting.Pairs)
		totalCost += res.Accounting.Cost
		totalLabeled += res.Accounting.Pairs
	}
	fmt.Printf("\n%d categories matched hands-off: total $%.2f, %d pairs labeled, zero developer hours\n",
		len(categories), totalCost, totalLabeled)
}
