// Crowdjoin: §10's hands-off crowdsourced JOIN — use Corleone as the join
// operator a crowdsourced RDBMS (CrowdDB, Deco, Qurk) would need to match
// entities across two tables without a developer. The example joins two
// citation tables and prints the materialized output with its accuracy
// estimate, the way a query result would carry cardinality confidence.
package main

import (
	"fmt"

	corleone "github.com/corleone-em/corleone"
)

func main() {
	// Two bibliography tables: a curated one and a scraped one.
	ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.CitationsProfile, 0.06))
	crowd := corleone.NewSimulatedCrowd(ds.Truth, 0.05, 33)

	cfg := corleone.DefaultConfig()
	cfg.Seed = 37
	cfg.Blocker.TB = int(ds.CartesianSize() / 10)

	res, err := corleone.EntityJoin(ds.A, ds.B, crowd, corleone.JoinOptions{
		Instruction: "rows join if they cite the same publication",
		Seeds:       ds.Seeds,
		Engine:      cfg,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("SELECT * FROM dblp JOIN scholar ON same_publication\n")
	fmt.Printf("-> %d rows, estimated precision %.1f%%±%.1f, recall %.1f%%±%.1f, crowd cost $%.2f\n\n",
		len(res.Rows),
		100*res.EstimatedPrecision.Point, 100*res.EstimatedPrecision.Margin,
		100*res.EstimatedRecall.Point, 100*res.EstimatedRecall.Margin,
		res.Cost)

	fmt.Println("first three joined rows (a.title | b.title):")
	ti := 0 // title is the first attribute in both tables
	for i, row := range res.Rows {
		if i == 3 {
			break
		}
		fmt.Printf("  %q | %q\n", row[ti], row[len(ds.A.Schema)+ti])
	}

	// True join quality, since this is a simulation with gold data.
	m := corleone.EvaluateMatches(res.Pairs, ds.Truth)
	fmt.Printf("\ntrue join quality: %v\n", m)
}
