// Quickstart: run the full hands-off pipeline on a small synthetic
// restaurant-matching task with a perfect simulated crowd, and print the
// matches alongside the estimated and true accuracy.
package main

import (
	"fmt"

	corleone "github.com/corleone-em/corleone"
)

func main() {
	// Generate a small dataset with known ground truth (in production you
	// would load two CSVs with corleone.LoadDatasetCSV and connect a real
	// crowd instead).
	ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.RestaurantsProfile, 0.5))

	// The crowd: the paper's random-worker model at a 5% error rate.
	crowd := corleone.NewSimulatedCrowd(ds.Truth, 0.05, 42)

	cfg := corleone.DefaultConfig()
	cfg.Seed = 7
	res, err := corleone.Run(ds, crowd, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("dataset: |A|=%d |B|=%d, %d true matches\n",
		ds.A.Len(), ds.B.Len(), ds.Truth.NumMatches())
	fmt.Printf("found %d matches in %d iteration(s)\n", len(res.Matches), res.Iterations)
	fmt.Printf("estimated: P=%.1f%%±%.1f R=%.1f%%±%.1f F1=%.1f%%\n",
		100*res.EstimatedPrecision.Point, 100*res.EstimatedPrecision.Margin,
		100*res.EstimatedRecall.Point, 100*res.EstimatedRecall.Margin, res.EstimatedF1)
	fmt.Printf("true:      %v\n", res.True)
	fmt.Printf("crowd:     $%.2f for %d labeled pairs (%d answers)\n",
		res.Accounting.Cost, res.Accounting.Pairs, res.Accounting.Answers)

	fmt.Println("\nfirst five matches:")
	for i, m := range res.Matches {
		if i == 5 {
			break
		}
		fmt.Printf("  %-40q  <->  %q\n", ds.A.Value(int(m.A), "name"), ds.B.Value(int(m.B), "name"))
	}
}
