// Budget: the §1/§3 "journalist" scenario — an ordinary user who wants to
// match two lists and can spend at most a fixed amount on the crowd.
// Corleone's budget mode stops the pipeline the moment the crowd spend
// reaches the cap, returning whatever it has matched so far together with
// the accuracy estimate, so the user always knows what their money bought.
package main

import (
	"fmt"

	corleone "github.com/corleone-em/corleone"
)

func main() {
	// Two "donor lists" (restaurant-shaped records stand in for people).
	ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.RestaurantsProfile, 0.8))
	crowd := corleone.NewSimulatedCrowd(ds.Truth, 0.05, 3)

	for _, budget := range []float64{1, 5, 25} {
		cfg := corleone.DefaultConfig()
		cfg.Seed = 5
		cfg.Budget = budget
		res, err := corleone.Run(ds, crowd, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("budget $%-5.2f -> spent $%-6.2f matches=%-4d true F1=%5.1f  (stopped: %s)\n",
			budget, res.Accounting.Cost, len(res.Matches), res.True.F1, res.StopReason)
		// Each budget level gets a fresh crowd cache in a real deployment;
		// here the shared simulated crowd just answers more questions.
		crowd = corleone.NewSimulatedCrowd(ds.Truth, 0.05, 3)
	}
}
