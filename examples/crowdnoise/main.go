// Crowdnoise: the §9.3 sensitivity analysis as a runnable example — how
// does Corleone degrade as crowd workers get noisier? Runs the same
// matching task at 0%, 10%, and 20% per-answer error rates (the paper's
// grid) and reports accuracy and cost. Expect mild F1 loss and moderate
// extra cost at 10%, and sharper degradation at 20% as majority votes
// start to flip.
package main

import (
	"fmt"

	corleone "github.com/corleone-em/corleone"
)

func main() {
	fmt.Printf("%-10s %8s %8s %8s %10s %8s\n",
		"error", "P", "R", "F1", "cost", "#pairs")
	for _, errRate := range []float64{0, 0.10, 0.20} {
		ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.RestaurantsProfile, 0.6))
		var crowd corleone.Crowd
		if errRate == 0 {
			crowd = corleone.Oracle(ds.Truth)
		} else {
			crowd = corleone.NewSimulatedCrowd(ds.Truth, errRate, 17)
		}
		cfg := corleone.DefaultConfig()
		cfg.Seed = 23
		res, err := corleone.Run(ds, crowd, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10.0f %8.1f %8.1f %8.1f %9.2f$ %8d\n",
			100*errRate, res.True.P, res.True.R, res.True.F1,
			res.Accounting.Cost, res.Accounting.Pairs)
	}
}
