package corleone

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateAndRun(t *testing.T) {
	ds := GenerateDataset(ScaledProfile(RestaurantsProfile, 0.4))
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, Oracle(ds.Truth), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.True.F1 < 85 {
		t.Errorf("F1 = %.1f", res.True.F1)
	}
	m := EvaluateMatches(res.Matches, ds.Truth)
	if m.F1 != res.True.F1 {
		t.Errorf("EvaluateMatches %.1f != engine-reported %.1f", m.F1, res.True.F1)
	}
}

func TestSimulatedCrowdConstructor(t *testing.T) {
	truth := NewGroundTruth([]Pair{P(0, 0)})
	c := NewSimulatedCrowd(truth, 0, 1)
	if !c.Answer(P(0, 0)) || c.Answer(P(0, 1)) {
		t.Error("simulated crowd with zero error must echo the truth")
	}
}

func TestLoadDatasetCSV(t *testing.T) {
	csvA := "name,city\njoe's pizza,new york\nsushi bar,chicago\nthai garden,boston\ncafe rio,austin\n"
	csvB := "name,city\nJoe's Pizza,NYC\nThai Garden,Boston\nburger spot,dallas\nnoodle house,seattle\n"
	schema := Schema{
		{Name: "name", Type: AttrString},
		{Name: "city", Type: AttrString},
	}
	seeds := []Labeled{
		{Pair: P(0, 0), Match: true},
		{Pair: P(2, 1), Match: true},
		{Pair: P(1, 0), Match: false},
		{Pair: P(3, 2), Match: false},
	}
	ds, err := LoadDatasetCSV("restaurants", strings.NewReader(csvA),
		strings.NewReader(csvB), schema, "same restaurant?", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if ds.A.Len() != 4 || ds.B.Len() != 4 {
		t.Errorf("sizes %d/%d", ds.A.Len(), ds.B.Len())
	}
	if ds.A.Schema[0].Type != AttrString {
		t.Error("schema hint lost")
	}
	// Bad seeds are rejected.
	_, err = LoadDatasetCSV("x", strings.NewReader(csvA), strings.NewReader(csvB),
		schema, "", seeds[:2])
	if err == nil {
		t.Error("expected seed validation error")
	}
}

func TestLoadDatasetCSVBadInput(t *testing.T) {
	if _, err := LoadDatasetCSV("x", strings.NewReader(""), strings.NewReader(""),
		nil, "", nil); err == nil {
		t.Error("expected error for empty CSV")
	}
}

func TestLoadDatasetCSVInfersSchema(t *testing.T) {
	csvA := "name,price,code\nwidget one,19.99,WX100A\ngadget two,5.00,GD200B\nthing three,7.25,TH300C\nitem four,12.00,IT400D\n"
	csvB := "name,price,code\nWidget One,20.99,wx100a\nItem Four,11.50,IT400D\nother five,3.10,OT500E\nmore six,8.00,MO600F\n"
	seeds := []Labeled{
		{Pair: P(0, 0), Match: true},
		{Pair: P(3, 1), Match: true},
		{Pair: P(1, 0), Match: false},
		{Pair: P(2, 3), Match: false},
	}
	ds, err := LoadDatasetCSV("widgets", strings.NewReader(csvA),
		strings.NewReader(csvB), nil, "same item?", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if ds.A.Schema[1].Type != AttrNumeric {
		t.Errorf("price inferred %v, want numeric", ds.A.Schema[1].Type)
	}
	if ds.A.Schema[2].Type != AttrCategorical {
		t.Errorf("code inferred %v, want categorical", ds.A.Schema[2].Type)
	}
}

func TestModelSaveLoadMatch(t *testing.T) {
	// Train on one "category", save the model, apply to a fresh dataset
	// from the same generator — the Example 3.1 reuse scenario.
	train := GenerateDataset(ScaledProfile(RestaurantsProfile, 0.4))
	res, err := Run(train, Oracle(train.Truth), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	model, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := ScaledProfile(RestaurantsProfile, 0.3)
	fresh.Seed = 777
	ds2 := GenerateDataset(fresh)
	pred, err := model.Match(ds2)
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateMatches(pred, ds2.Truth)
	if m.F1 < 80 {
		t.Errorf("reused model F1 = %.1f on fresh data", m.F1)
	}
}
