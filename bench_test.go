// Benchmarks regenerating every table and figure of the paper's evaluation
// (§9), plus micro-benchmarks of the substrates. The pipeline benches run
// the complete system — blocking, active learning, estimation, iteration —
// on scaled synthetic datasets with a simulated crowd and report the
// paper's metrics (F1, cost, labeled pairs, umbrella sizes) as custom
// benchmark metrics, so `go test -bench` output IS the reproduction log.
//
// Scales here are chosen so each bench iteration completes in seconds; the
// default experiment scales (cmd/experiments) are larger. Shapes — who
// wins, by roughly what factor, where blocking triggers — match at both.
package corleone

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/corleone-em/corleone/internal/blocker"
	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/datagen"
	"github.com/corleone-em/corleone/internal/experiments"
	"github.com/corleone-em/corleone/internal/feature"
	"github.com/corleone-em/corleone/internal/forest"
	"github.com/corleone-em/corleone/internal/record"
	"github.com/corleone-em/corleone/internal/similarity"
)

// benchSetups are the bench-scale dataset configurations.
func benchSetups() []experiments.Setup {
	return []experiments.Setup{
		experiments.NewSetup("Restaurants", 0.5, experiments.DefaultErrorRate, 31),
		experiments.NewSetup("Citations", 0.05, experiments.DefaultErrorRate, 32),
		experiments.NewSetup("Products", 0.08, experiments.DefaultErrorRate, 33),
	}
}

// BenchmarkTable1_Datasets generates the three datasets and reports their
// Table 1 statistics (sizes, match counts, positive density).
func BenchmarkTable1_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range benchSetups() {
			ds := s.Dataset()
			b.ReportMetric(float64(ds.Truth.NumMatches()), "matches_"+ds.Name)
		}
	}
}

// BenchmarkTable2 runs Corleone plus both baselines per dataset: the
// headline accuracy/cost comparison. Reported metrics per dataset:
// F1, baseline-1 F1, baseline-2 F1, dollars spent, pairs labeled.
func BenchmarkTable2(b *testing.B) {
	for _, s := range benchSetups() {
		s := s
		b.Run(s.Profile.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds, res, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				b1 := experiments.RunBaseline(ds, res.Accounting.Pairs, s.Seed)
				b2 := experiments.RunBaseline(ds, 0, s.Seed)
				b.ReportMetric(res.True.F1, "F1")
				b.ReportMetric(b1.Metrics.F1, "B1_F1")
				b.ReportMetric(b2.Metrics.F1, "B2_F1")
				b.ReportMetric(res.Accounting.Cost, "cost_$")
				b.ReportMetric(float64(res.Accounting.Pairs), "pairs")
			}
		})
	}
}

// BenchmarkTable3_Blocking runs the Blocker on the two datasets where it
// triggers and reports umbrella size, recall, and blocking cost.
func BenchmarkTable3_Blocking(b *testing.B) {
	for _, name := range []string{"Citations", "Products"} {
		scale := 0.05
		if name == "Products" {
			scale = 0.08
		}
		s := experiments.NewSetup(name, scale, experiments.DefaultErrorRate, 34)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := s.Dataset()
				cfg := s.EngineConfig()
				cfg.SkipEstimator = true // blocking + one matching pass
				res, err := Run(ds, s.Crowd(ds), cfg)
				if err != nil {
					b.Fatal(err)
				}
				blk := res.Blocking
				if !blk.Triggered {
					b.Fatal("blocking did not trigger")
				}
				kept := ds.Truth.CountMatchesIn(blk.Candidates)
				b.ReportMetric(float64(len(blk.Candidates)), "umbrella")
				b.ReportMetric(100*float64(kept)/float64(ds.Truth.NumMatches()), "recall_%")
				b.ReportMetric(res.BlockingAccounting.Cost, "cost_$")
				b.ReportMetric(float64(res.BlockingAccounting.Pairs), "pairs")
			}
		})
	}
}

// BenchmarkTable4_Iterations runs the full iterative loop and reports the
// per-phase pair counts and the estimation accuracy gap (|est F1 − true
// F1|, which the paper finds within 0.5–5.4 points).
func BenchmarkTable4_Iterations(b *testing.B) {
	s := experiments.NewSetup("Citations", 0.05, experiments.DefaultErrorRate, 35)
	for i := 0; i < b.N; i++ {
		_, res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Iterations), "iterations")
		var estGap float64
		for _, ph := range res.Phases {
			if ph.HasEst {
				estGap = abs(ph.Estimated.F1 - res.True.F1)
			}
		}
		b.ReportMetric(estGap, "estF1_gap")
		b.ReportMetric(res.True.F1, "F1")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkFigure2_RuleExtraction measures training a toy forest and
// extracting its decision rules (the paper's Figure 2 pipeline).
func BenchmarkFigure2_RuleExtraction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []bool
	for i := 0; i < 500; i++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		X = append(X, v)
		y = append(y, v[0] > 0.5 && v[1] > 0.3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := forest.Train(X, y, forest.Defaults())
		neg, pos := f.Rules()
		if len(neg)+len(pos) == 0 {
			b.Fatal("no rules")
		}
	}
}

// BenchmarkFigure3_Confidence runs one active-learning pass and reports the
// confidence-series length and the stop pattern (encoded: 1 converged,
// 2 near-absolute, 3 degrading, 4 other).
func BenchmarkFigure3_Confidence(b *testing.B) {
	s := experiments.NewSetup("Restaurants", 0.5, experiments.DefaultErrorRate, 36)
	for i := 0; i < b.N; i++ {
		ds := s.Dataset()
		cfg := s.EngineConfig()
		cfg.SkipEstimator = true
		res, err := Run(ds, s.Crowd(ds), cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr := res.ConfidenceTraces[0]
		b.ReportMetric(float64(len(tr.Confidence)), "AL_iterations")
		code := 4.0
		switch tr.Reason {
		case "converged":
			code = 1
		case "near-absolute":
			code = 2
		case "degrading":
			code = 3
		}
		b.ReportMetric(code, "stop_pattern")
	}
}

// BenchmarkFigure4_HITRendering measures rendering crowd questions.
func BenchmarkFigure4_HITRendering(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ProductsPaper, 0.05))
	pairs := ds.Truth.Matches()[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pairs
		if out := experiments.Figure4(); len(out) == 0 {
			b.Fatal("empty rendering")
		}
	}
}

// BenchmarkExpEstimatorEfficiency reproduces the §9.3 sample-efficiency
// comparison: labels used by the baseline estimator vs Corleone's.
func BenchmarkExpEstimatorEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.EstimatorEfficiency(
			[]experiments.Setup{experiments.NewSetup("Restaurants", 0.5, 0, 37)})
		r := rows[0]
		b.ReportMetric(float64(r.BaselineLabels), "baseline_labels")
		b.ReportMetric(float64(r.CorleoneLabels), "corleone_labels")
		b.ReportMetric(r.SavingsPct, "savings_%")
	}
}

// BenchmarkExpReduction reproduces the §9.3 reduction-effectiveness
// analysis: F1 before and after iterating on difficult pairs.
func BenchmarkExpReduction(b *testing.B) {
	setups := []experiments.Setup{experiments.NewSetup("Products", 0.08, experiments.DefaultErrorRate, 38)}
	for i := 0; i < b.N; i++ {
		runs, err := experiments.RunAll(setups, false)
		if err != nil {
			b.Fatal(err)
		}
		rows, _ := experiments.ReductionEffectiveness(runs)
		if len(rows) > 0 {
			b.ReportMetric(rows[0].F1Iter1, "F1_iter1")
			b.ReportMetric(rows[0].F1Final, "F1_final")
		}
	}
}

// BenchmarkExpRulePrecision reproduces the §9.3 rule-evaluation audit:
// the true precision of every crowd-certified rule.
func BenchmarkExpRulePrecision(b *testing.B) {
	setups := []experiments.Setup{experiments.NewSetup("Citations", 0.05, experiments.DefaultErrorRate, 39)}
	for i := 0; i < b.N; i++ {
		runs, err := experiments.RunAll(setups, false)
		if err != nil {
			b.Fatal(err)
		}
		rows, _ := experiments.RulePrecisionAudit(runs)
		for _, r := range rows {
			if r.Count > 0 {
				b.ReportMetric(r.MeanPrec, "prec_"+r.Step)
			}
		}
	}
}

// BenchmarkExpCrowdNoise reproduces the §9.3 error-rate sensitivity sweep
// on the Restaurants dataset (0%, 10%, 20%).
func BenchmarkExpCrowdNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.CrowdNoiseSensitivity([]string{"Restaurants"},
			map[string]float64{"Restaurants": 0.4}, 40)
		for _, r := range rows {
			b.ReportMetric(r.F1, fmt.Sprintf("F1_err%.0f", 100*r.ErrorRate))
			b.ReportMetric(r.Cost, fmt.Sprintf("cost_err%.0f", 100*r.ErrorRate))
		}
	}
}

// BenchmarkExpParamSensitivity reproduces the §9.4 parameter sweep
// (k, Pmin, t_B) on a small Citations instance.
func BenchmarkExpParamSensitivity(b *testing.B) {
	if testing.Short() {
		b.Skip("8 full pipeline runs")
	}
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.ParamSensitivity("Citations", 0.04, 41)
		for _, r := range rows {
			_ = r
		}
		b.ReportMetric(float64(len(rows)), "configs")
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkSimilarityEditDistance(b *testing.B) {
	x, y := "kingston hyperx 4gb kit 2 x 2gb", "kingston 4 gb hyperx ddr3 kit"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.EditSim(x, y)
	}
}

func BenchmarkSimilarityJaroWinkler(b *testing.B) {
	x, y := "kingston hyperx 4gb kit", "kingston hyperx 12gb kit"
	for i := 0; i < b.N; i++ {
		similarity.JaroWinkler(x, y)
	}
}

func BenchmarkSimilarityJaccardWords(b *testing.B) {
	x, y := "efficient scalable entity matching with crowdsourcing",
		"scalable crowdsourced entity resolution framework"
	for i := 0; i < b.N; i++ {
		similarity.JaccardWords(x, y)
	}
}

func BenchmarkSimilarityMongeElkan(b *testing.B) {
	x, y := "chaitanya gokhale, sanjib das, anhai doan", "c. gokhale, s. das, a. doan"
	for i := 0; i < b.N; i++ {
		similarity.MongeElkan(x, y)
	}
}

func BenchmarkFeatureVector(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ProductsPaper, 0.05))
	ex := feature.NewExtractor(ds)
	p := record.P(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Vector(p)
	}
}

func BenchmarkForestTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []bool
	for i := 0; i < 500; i++ {
		v := make([]float64, 20)
		for j := range v {
			v[j] = rng.Float64()
		}
		X = append(X, v)
		y = append(y, v[0]+v[1] > 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest.Train(X, y, forest.Defaults())
	}
}

func BenchmarkForestPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []bool
	for i := 0; i < 500; i++ {
		v := make([]float64, 20)
		for j := range v {
			v[j] = rng.Float64()
		}
		X = append(X, v)
		y = append(y, v[0]+v[1] > 1)
	}
	f := forest.Train(X, y, forest.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}

// BenchmarkBlockingThroughput measures the parallel rule applier's pair
// scan rate over A×B — the work the paper offloads to Hadoop.
func BenchmarkBlockingThroughput(b *testing.B) {
	s := experiments.NewSetup("Citations", 0.05, 0, 42)
	ds := s.Dataset()
	cfg := s.EngineConfig()
	cfg.SkipEstimator = true
	// One full run to get the selected rules, outside the timer.
	res, err := Run(ds, s.Crowd(ds), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Blocking.Selected) == 0 {
		b.Skip("no rules selected at this seed")
	}
	b.ResetTimer()
	// Re-apply the pipeline end to end; pairs/op contextualizes the scan.
	for i := 0; i < b.N; i++ {
		res2, err := Run(ds, s.Crowd(ds), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res2.Blocking.CartesianSize), "pairs_scanned")
	}
}

// ---- ablation benches (design choices DESIGN.md calls out) ----

// BenchmarkAblationVoting compares the §8.2 aggregation schemes on a
// spammy simulated panel: accuracy and answers per pair.
func BenchmarkAblationVoting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.VotingAblation(400, 0.85, 3, 43)
		for _, r := range rows {
			b.ReportMetric(r.LabelAccuracy, "acc_"+r.Scheme)
			b.ReportMetric(r.AnswersPerPair, "apq_"+r.Scheme)
		}
	}
}

// BenchmarkAblationALStrategy compares entropy-driven example selection
// against uniform-random selection on the full pipeline.
func BenchmarkAblationALStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.ALStrategyAblation("Restaurants", 0.5, 44)
		for _, r := range rows {
			b.ReportMetric(r.F1, "F1_"+r.Strategy)
		}
	}
}

// BenchmarkAblationStopping compares the §5.3 stopping patterns against
// fixed-iteration and impatient variants.
func BenchmarkAblationStopping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.StoppingAblation("Restaurants", 0.5, 45)
		for j, r := range rows {
			b.ReportMetric(float64(r.ALIters), fmt.Sprintf("iters_v%d", j))
			b.ReportMetric(r.F1, fmt.Sprintf("F1_v%d", j))
		}
	}
}

// BenchmarkAblationBudgetSplit compares §10 budget allocations.
func BenchmarkAblationBudgetSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.BudgetAllocationStudy("Restaurants", 0.5, 3, 46)
		for j, r := range rows {
			b.ReportMetric(r.F1, fmt.Sprintf("F1_split%d", j))
		}
	}
}

// BenchmarkDawidSkene measures EM aggregation throughput.
func BenchmarkDawidSkene(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.RestaurantsPaper, 0.5))
	panel := crowd.MixedPanel(ds.Truth, 8, 0.85, 2, 47)
	votes := crowd.CollectVotes(panel, ds.Truth.Matches(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crowd.DawidSkene(votes, panel.NumWorkers(), 100, 1e-7)
	}
}

func crowdRunnerForBench(ds *record.Dataset) *crowd.Runner {
	r := crowd.NewRunner(crowd.NewSimulated(ds.Truth, 0.05, 71), 0.01)
	r.SeedLabels(ds.Seeds)
	return r
}

func blockerDefaultsForBench(tb int) blocker.Config {
	cfg := blocker.Defaults()
	cfg.TB = tb
	cfg.Seed = 72
	return cfg
}

var blockerRun = blocker.Run

// BenchmarkExpTBScaling checks the §9.4 claim that blocking time grows
// only linearly with t_B (the sample S is proportional to t_B, and active
// learning over it dominates). Sub-benchmarks double t_B; ns/op should
// roughly double, not square.
func BenchmarkExpTBScaling(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.CitationsPaper, 0.05))
	for _, tb := range []int{10000, 20000, 40000} {
		b.Run(fmt.Sprintf("tB=%d", tb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := feature.NewExtractor(ds)
				runner := crowdRunnerForBench(ds)
				cfg := blockerDefaultsForBench(tb)
				res, err := blockerRun(ds, ex, runner, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.SampleSize), "sample_size")
			}
		})
	}
}
