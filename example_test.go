package corleone_test

import (
	"fmt"
	"strings"

	corleone "github.com/corleone-em/corleone"
)

// The simplest possible run: generate a small synthetic dataset and match
// it with a perfect simulated crowd.
func ExampleRun() {
	ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.RestaurantsProfile, 0.25))
	res, err := corleone.Run(ds, corleone.Oracle(ds.Truth), corleone.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("all true matches found:", len(res.Matches) == ds.Truth.NumMatches())
	fmt.Println("estimator converged:", res.EstimatedF1 > 0)
	// Output:
	// all true matches found: true
	// estimator converged: true
}

// Loading user CSVs with schema inference: the hands-off path where the
// user provides only data, an instruction, and four examples.
func ExampleLoadDatasetCSV() {
	csvA := `name,price
deluxe widget,19.99
basic gadget,5.00
premium thing,45.00
standard item,12.00`
	csvB := `name,price
Deluxe Widget,20.49
Standard Item,11.85
other product,3.10
different good,8.00`
	seeds := []corleone.Labeled{
		{Pair: corleone.P(0, 0), Match: true},
		{Pair: corleone.P(3, 1), Match: true},
		{Pair: corleone.P(1, 0), Match: false},
		{Pair: corleone.P(2, 2), Match: false},
	}
	ds, err := corleone.LoadDatasetCSV("catalog",
		strings.NewReader(csvA), strings.NewReader(csvB),
		nil, // nil schema: attribute types are inferred
		"match if the same product", seeds)
	if err != nil {
		panic(err)
	}
	fmt.Println("price inferred numeric:", ds.A.Schema[1].Type.String())
	// Output:
	// price inferred numeric: numeric
}

// Scoring predicted matches against a gold standard.
func ExampleEvaluateMatches() {
	truth := corleone.NewGroundTruth([]corleone.Pair{
		corleone.P(0, 0), corleone.P(1, 1),
	})
	predicted := []corleone.Pair{corleone.P(0, 0), corleone.P(2, 2)}
	m := corleone.EvaluateMatches(predicted, truth)
	fmt.Printf("P=%.0f R=%.0f\n", m.P, m.R)
	// Output:
	// P=50 R=50
}
