// Command experiments regenerates the paper's tables and figures on the
// synthetic datasets with a simulated crowd.
//
// Usage:
//
//	experiments                  # everything
//	experiments -table 2         # just Table 2
//	experiments -figure 3        # just Figure 3
//	experiments -exp noise       # a §9.3/§9.4 experiment or ablation:
//	                             #   estimator | reduction | rules | noise |
//	                             #   params | voting | alstrategy | stopping |
//	                             #   budget | cleaning
//	experiments -scale 0.05      # shrink the large datasets further
//	experiments -error 0.1       # crowd error rate
//	experiments -seed 7
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof
//	                             # grab pprof data from any run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/corleone-em/corleone/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-4)")
	figure := flag.Int("figure", 0, "regenerate only this figure (2-4)")
	exp := flag.String("exp", "", "extra experiment: estimator|reduction|rules|noise|params|voting|alstrategy|stopping|budget|cleaning|moneytime|difficulty")
	scale := flag.Float64("scale", 0, "override scale for Citations/Products (0 = defaults)")
	errRate := flag.Float64("error", experiments.DefaultErrorRate, "simulated crowd error rate")
	seed := flag.Int64("seed", 11, "random seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	setups := makeSetups(*scale, *errRate, *seed)

	switch {
	case *figure == 2:
		fmt.Println(experiments.Figure2())
		return
	case *figure == 4:
		fmt.Println(experiments.Figure4())
		return
	case *exp == "estimator":
		_, txt := experiments.EstimatorEfficiency(setups)
		fmt.Println(txt)
		return
	case *exp == "noise":
		scales := map[string]float64{
			"Restaurants": 1.0,
			"Citations":   scaleOr(*scale, experiments.DefaultScaleCitations),
			"Products":    scaleOr(*scale, experiments.DefaultScaleProducts),
		}
		_, txt := experiments.CrowdNoiseSensitivity(
			[]string{"Restaurants", "Citations", "Products"}, scales, *seed)
		fmt.Println(txt)
		return
	case *exp == "params":
		_, txt := experiments.ParamSensitivity("Citations",
			scaleOr(*scale, experiments.DefaultScaleCitations), *seed)
		fmt.Println(txt)
		return
	case *exp == "voting":
		_, txt := experiments.VotingAblation(400, 0.85, 3, *seed)
		fmt.Println(txt)
		_, txt = experiments.NoiseCostCurve([]float64{0, 0.05, 0.10, 0.20}, 50, *seed)
		fmt.Println(txt)
		return
	case *exp == "alstrategy":
		_, txt := experiments.ALStrategyAblation("Restaurants", 1.0, *seed)
		fmt.Println(txt)
		return
	case *exp == "stopping":
		_, txt := experiments.StoppingAblation("Restaurants", 1.0, *seed)
		fmt.Println(txt)
		return
	case *exp == "budget":
		_, txt := experiments.BudgetAllocationStudy("Restaurants", 1.0, 10, *seed)
		fmt.Println(txt)
		return
	case *exp == "moneytime":
		_, txt := experiments.MoneyTimeTradeoff(3000, 3, 24, 200)
		fmt.Println(txt)
		return
	case *exp == "difficulty":
		_, txt := experiments.DifficultySweep("Restaurants", 0.6,
			[]float64{0.5, 1.0, 1.5, 2.0}, *seed)
		fmt.Println(txt)
		return
	}

	// The remaining outputs all come from full pipeline runs.
	needBaselines := *table == 0 || *table == 2
	runs, err := experiments.RunAll(setups, needBaselines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	switch {
	case *table == 1:
		fmt.Println(experiments.Table1(runs))
	case *table == 2:
		fmt.Println(experiments.Table2(runs))
	case *table == 3:
		fmt.Println(experiments.Table3(runs))
	case *table == 4:
		fmt.Println(experiments.Table4(runs))
	case *figure == 3:
		fmt.Println(experiments.Figure3(runs))
	case *exp == "reduction":
		_, txt := experiments.ReductionEffectiveness(runs)
		fmt.Println(txt)
	case *exp == "rules":
		_, txt := experiments.RulePrecisionAudit(runs)
		fmt.Println(txt)
	case *exp == "cleaning":
		_, txt := experiments.RuleCleaning(runs)
		fmt.Println(txt)
	default:
		fmt.Println(experiments.Table1(runs))
		fmt.Println(experiments.Table2(runs))
		fmt.Println(experiments.Table3(runs))
		fmt.Println(experiments.Table4(runs))
		fmt.Println(experiments.Figure2())
		fmt.Println(experiments.Figure3(runs))
		fmt.Println(experiments.Figure4())
		_, txt := experiments.ReductionEffectiveness(runs)
		fmt.Println(txt)
		_, txt = experiments.RulePrecisionAudit(runs)
		fmt.Println(txt)
		_, txt = experiments.RuleCleaning(runs)
		fmt.Println(txt)
		_, txt = experiments.VotingAblation(400, 0.85, 3, *seed)
		fmt.Println(txt)
	}
}

func makeSetups(scale, errRate float64, seed int64) []experiments.Setup {
	return []experiments.Setup{
		experiments.NewSetup("Restaurants", 1.0, errRate, seed),
		experiments.NewSetup("Citations", scaleOr(scale, experiments.DefaultScaleCitations), errRate, seed+1),
		experiments.NewSetup("Products", scaleOr(scale, experiments.DefaultScaleProducts), errRate, seed+2),
	}
}

func scaleOr(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}
