package main

import "testing"

func TestScaleOr(t *testing.T) {
	if scaleOr(0, 0.1) != 0.1 || scaleOr(0.2, 0.1) != 0.2 {
		t.Error("scaleOr wrong")
	}
}

func TestMakeSetups(t *testing.T) {
	got := makeSetups(0, 0.05, 3)
	if len(got) != 3 {
		t.Fatalf("setups = %d", len(got))
	}
	names := map[string]bool{}
	for _, s := range got {
		names[s.Profile.Name] = true
		if s.ErrorRate != 0.05 {
			t.Errorf("%s error rate = %v", s.Profile.Name, s.ErrorRate)
		}
	}
	for _, want := range []string{"Restaurants", "Citations", "Products"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}
