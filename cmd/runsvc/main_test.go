package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"github.com/corleone-em/corleone/internal/runsvc"
)

// TestGracefulShutdownDrainsJobs pins the SIGTERM path end-to-end: a job
// submitted over HTTP is in flight when the signal lands; serve drains the
// manager — the job reaches a terminal state with its journal on disk —
// and then returns nil with the listener closed to new connections.
func TestGracefulShutdownDrainsJobs(t *testing.T) {
	dir := t.TempDir()
	m, err := runsvc.NewManager(runsvc.Options{Workers: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(lis, runsvc.Handler(m), m, sigs) }()
	base := "http://" + lis.Addr().String()

	meta := runsvc.Meta{Profile: "restaurants", Scale: 0.3, ErrorRate: 0.05, Seed: 3}
	body, _ := json.Marshal(meta)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st runsvc.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if st.ID == "" {
		t.Fatalf("submit returned %+v", st)
	}
	j, ok := m.Job(st.ID)
	if !ok {
		t.Fatalf("job %s not registered", st.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.State() == runsvc.StateQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after signal, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not return after signal")
	}

	if s := j.State(); !s.Terminal() {
		t.Fatalf("after drain, job state = %s, want terminal", s)
	}
	// The journaled spec survived the drain: a fresh process can resume.
	if _, err := os.Stat(filepath.Join(dir, st.ID, "spec.json")); err != nil {
		t.Errorf("journaled spec missing after drain: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting connections after shutdown")
	}
}

// TestSplitEndpoints pins the -shard-endpoints flag parser.
func TestSplitEndpoints(t *testing.T) {
	got := splitEndpoints(" http://a:1 ,, http://b:2,")
	want := []string{"http://a:1", "http://b:2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitEndpoints = %v, want %v", got, want)
	}
	if splitEndpoints("") != nil {
		t.Fatal("empty flag should parse to nil")
	}
}

func TestUnfinished(t *testing.T) {
	if got := unfinished(nil); got != nil {
		t.Fatalf("unfinished(nil) = %v", got)
	}

	store, err := runsvc.NewStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}

	// done: clean finish, not a resume candidate.
	// dead: no status at all (process killed before writing one).
	// crashed: terminal status that still warrants a resume.
	for id, rec := range map[string]*runsvc.StatusRecord{
		"done":    {State: runsvc.StateDone},
		"dead":    nil,
		"crashed": {State: runsvc.StateCrashed},
	} {
		jl, err := store.Open(id)
		if err != nil {
			t.Fatalf("open %s: %v", id, err)
		}
		if rec != nil {
			if err := jl.WriteStatus(*rec); err != nil {
				t.Fatalf("status %s: %v", id, err)
			}
		}
		jl.Close()
	}

	got := unfinished(store)
	if len(got) != 2 || got[0] != "crashed" || got[1] != "dead" {
		t.Fatalf("unfinished = %v, want [crashed dead]", got)
	}
}
