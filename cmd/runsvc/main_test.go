package main

import (
	"testing"

	"github.com/corleone-em/corleone/internal/runsvc"
)

func TestUnfinished(t *testing.T) {
	if got := unfinished(nil); got != nil {
		t.Fatalf("unfinished(nil) = %v", got)
	}

	store, err := runsvc.NewStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}

	// done: clean finish, not a resume candidate.
	// dead: no status at all (process killed before writing one).
	// crashed: terminal status that still warrants a resume.
	for id, rec := range map[string]*runsvc.StatusRecord{
		"done":    {State: runsvc.StateDone},
		"dead":    nil,
		"crashed": {State: runsvc.StateCrashed},
	} {
		jl, err := store.Open(id)
		if err != nil {
			t.Fatalf("open %s: %v", id, err)
		}
		if rec != nil {
			if err := jl.WriteStatus(*rec); err != nil {
				t.Fatalf("status %s: %v", id, err)
			}
		}
		jl.Close()
	}

	got := unfinished(store)
	if len(got) != 2 || got[0] != "crashed" || got[1] != "dead" {
		t.Fatalf("unfinished = %v, want [crashed dead]", got)
	}
}
