// Command runsvc runs the durable run-orchestration service: an HTTP
// control surface over a pool of concurrent Corleone jobs, each journaled
// to disk so a killed process resumes without re-paying the crowd.
//
// Usage:
//
//	runsvc -addr :8090 -workers 4 -journal ./journal
//
// API:
//
//	POST /jobs                submit a job (JSON body: profile, scale,
//	                          error_rate, seed, budget, ...)
//	GET  /jobs                list job statuses
//	GET  /jobs/{id}           one job's status
//	POST /jobs/{id}/cancel    request cancellation
//	POST /jobs/{id}/resume    resume a journaled job
//	GET  /jobs/{id}/events    NDJSON progress stream (history, then live)
//	GET  /journal             list journaled job ids
//
// On startup the service lists any journaled jobs left unfinished by a
// previous process (no terminal status.json) so the operator can POST
// /jobs/{id}/resume to pick them up.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/corleone-em/corleone/internal/runsvc"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 4, "concurrent job executors")
	journal := flag.String("journal", "./journal", "journal root directory (empty = in-memory only)")
	flag.Parse()

	m, err := runsvc.NewManager(runsvc.Options{
		Workers:    *workers,
		JournalDir: *journal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "runsvc:", err)
		os.Exit(1)
	}
	defer m.Close()

	for _, id := range unfinished(m.Store()) {
		fmt.Fprintf(os.Stderr, "runsvc: job %s has an unfinished journal; POST /jobs/%s/resume to continue it\n", id, id)
	}

	fmt.Fprintf(os.Stderr, "runsvc: %d executors, journal at %s, listening on %s\n",
		*workers, *journal, *addr)
	if err := http.ListenAndServe(*addr, runsvc.Handler(m)); err != nil {
		fmt.Fprintln(os.Stderr, "runsvc:", err)
		os.Exit(1)
	}
}

// unfinished lists journaled jobs a previous process left without a clean
// finish — no terminal status, or one that says crashed or canceled. These
// are the resume candidates announced at startup.
func unfinished(store *runsvc.Store) []string {
	if store == nil {
		return nil
	}
	var out []string
	for _, id := range store.List() {
		jl, err := store.Open(id)
		if err != nil {
			continue
		}
		rec, finished := jl.ReadStatus()
		jl.Close()
		if !finished || rec.State == runsvc.StateCrashed || rec.State == runsvc.StateCanceled {
			out = append(out, id)
		}
	}
	return out
}
