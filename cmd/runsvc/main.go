// Command runsvc runs the durable run-orchestration service: an HTTP
// control surface over a pool of concurrent Corleone jobs, each journaled
// to disk so a killed process resumes without re-paying the crowd.
//
// Usage:
//
//	runsvc -addr :8090 -workers 4 -journal ./journal
//	runsvc -addr :8090 -shard-endpoints http://w1:9301,http://w2:9301
//	runsvc -snapshot-every 1 -max-journal-bytes 1073741824
//
// API:
//
//	POST /jobs                submit a job (JSON body: profile, scale,
//	                          error_rate, seed, budget, shards, ...)
//	GET  /jobs                list job statuses
//	GET  /jobs/{id}           one job's status
//	POST /jobs/{id}/cancel    request cancellation
//	POST /jobs/{id}/resume    resume a journaled job
//	GET  /jobs/{id}/events    NDJSON progress stream (history, then live)
//	GET  /journal             list journaled job ids
//	GET  /healthz             liveness probe (503 "draining" during drain)
//	GET  /metrics             job/shard/journal/snapshot counters
//
// Overload is signaled, never hidden: a full queue or an exhausted
// -max-journal-bytes budget rejects the submit with 429 Too Many Requests
// plus Retry-After; once draining begins, submits get 503 + Retry-After
// and /healthz flips to 503 so load balancers stop routing here.
//
// With -snapshot-every N > 0, each job's journal is compacted every Nth
// checkpoint: a checksummed snapshot generation replaces the log prefix,
// so resume cost is bounded by records since the last snapshot rather
// than the run's whole history. Snapshots from a newer configuration are
// ignored by older binaries only in the sense that journals without
// snapshots stay fully replayable; a corrupt newest generation falls back
// to the previous one automatically.
//
// With -shard-endpoints set, each job's sharded blocking tasks fan out to
// those shardworker processes over HTTP. On startup the service lists any
// journaled jobs left unfinished by a previous process (no terminal
// status.json) so the operator can POST /jobs/{id}/resume to pick them up.
//
// SIGINT/SIGTERM shut down gracefully: running jobs are canceled and stop
// at their next crowd batch with every paid label flushed to the journal,
// then the listener closes. A fresh process resumes the drained jobs by id.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/corleone-em/corleone/internal/runsvc"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "runsvc:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the manager, and serves until a termination
// signal arrives. sigs overrides the OS signal source in tests; nil means
// real SIGINT/SIGTERM.
func run(args []string, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("runsvc", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	workers := fs.Int("workers", 4, "concurrent job executors")
	journal := fs.String("journal", "./journal", "journal root directory (empty = in-memory only)")
	endpoints := fs.String("shard-endpoints", "", "comma-separated shardworker base URLs (empty = in-process sharding)")
	snapEvery := fs.Int("snapshot-every", 1, "compact each job's journal every N checkpoints (0 = never)")
	maxJournal := fs.Int64("max-journal-bytes", 0, "shed new submissions once the journal root holds this many bytes (0 = unlimited; resumes are exempt)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := runsvc.NewManager(runsvc.Options{
		Workers:         *workers,
		JournalDir:      *journal,
		ShardEndpoints:  splitEndpoints(*endpoints),
		SnapshotEvery:   *snapEvery,
		MaxJournalBytes: *maxJournal,
	})
	if err != nil {
		return err
	}

	for _, id := range unfinished(m.Store()) {
		fmt.Fprintf(os.Stderr, "runsvc: job %s has an unfinished journal; POST /jobs/%s/resume to continue it\n", id, id)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		m.Close()
		return err
	}
	if sigs == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		sigs = ch
	}
	fmt.Fprintf(os.Stderr, "runsvc: %d executors, journal at %s, listening on %s\n",
		*workers, *journal, lis.Addr())
	return serve(lis, runsvc.Handler(m), m, sigs)
}

// serve runs the HTTP server on lis until a signal arrives, then shuts
// down gracefully: the manager drains first — running jobs are canceled
// and finish at their next crowd batch with journals flushed — and the
// listener closes once in-flight requests complete.
func serve(lis net.Listener, h http.Handler, m *runsvc.Manager, sigs <-chan os.Signal) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	select {
	case err := <-errc:
		m.Drain()
		return err // listener failed before any signal
	case <-sigs:
		fmt.Fprintln(os.Stderr, "runsvc: signal received; draining jobs")
	}
	m.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// splitEndpoints parses the -shard-endpoints flag.
func splitEndpoints(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// unfinished lists journaled jobs a previous process left without a clean
// finish — no terminal status, or one that says crashed or canceled. These
// are the resume candidates announced at startup.
func unfinished(store *runsvc.Store) []string {
	if store == nil {
		return nil
	}
	var out []string
	for _, id := range store.List() {
		jl, err := store.Open(id)
		if err != nil {
			continue
		}
		rec, finished := jl.ReadStatus()
		jl.Close()
		if !finished || rec.State == runsvc.StateCrashed || rec.State == runsvc.StateCanceled {
			out = append(out, id)
		}
	}
	return out
}
