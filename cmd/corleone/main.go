// Command corleone runs the hands-off entity matching pipeline on two CSV
// tables — the §3 "journalist" scenario. The user supplies the tables, a
// one-line matching instruction, four seed examples, and (since this build
// has no Mechanical Turk bridge) a gold-standard CSV that powers a
// simulated crowd with a configurable error rate.
//
// Usage:
//
//	corleone -a donorsA.csv -b donorsB.csv \
//	  -instruction "match if the same person" \
//	  -seeds "0:0:yes,5:3:yes,0:1:no,2:9:no" \
//	  -gold gold.csv -error 0.05 -budget 500 -out matches.csv
//
// The gold CSV has two integer columns (rowA, rowB), one true match per
// line. The seeds flag lists rowA:rowB:yes|no quadruples.
//
// With -crowd self, YOU are the crowd: each question is rendered at the
// terminal and answered with y/n — the fully hands-off, fully offline way
// for one person to match two lists (no gold file needed).
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	corleone "github.com/corleone-em/corleone"
)

func main() {
	fileA := flag.String("a", "", "CSV file for table A (header row required)")
	fileB := flag.String("b", "", "CSV file for table B (header row required)")
	instruction := flag.String("instruction", "", "matching instruction shown to the crowd")
	seedsFlag := flag.String("seeds", "", "seed examples rowA:rowB:yes|no, comma separated (2 yes + 2 no)")
	gold := flag.String("gold", "", "gold standard CSV (rowA,rowB per line) for the simulated crowd")
	crowdKind := flag.String("crowd", "simulated", "crowd source: simulated | self (answer questions yourself)")
	errRate := flag.Float64("error", 0.05, "simulated crowd error rate")
	price := flag.Float64("price", 0.01, "price per crowd question in dollars")
	budget := flag.Float64("budget", 0, "stop after spending this many dollars (0 = no budget)")
	out := flag.String("out", "", "write matches to this CSV (default stdout)")
	seed := flag.Int64("seed", 1, "random seed")
	shards := flag.Int("shards", 0, "blocking shards: 0 = auto by table size, 1 = single index, >1 = that many shards")
	shardWorkers := flag.Int("shard-workers", 0, "concurrent shard workers during blocking (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print pipeline progress")
	flag.Parse()

	if *fileA == "" || *fileB == "" || *seedsFlag == "" ||
		(*gold == "" && *crowdKind != "self") {
		flag.Usage()
		os.Exit(2)
	}

	seeds, err := parseSeeds(*seedsFlag)
	check(err)
	fa, err := os.Open(*fileA)
	check(err)
	defer fa.Close()
	fb, err := os.Open(*fileB)
	check(err)
	defer fb.Close()

	ds, err := corleone.LoadDatasetCSV("user-task", fa, fb, nil, *instruction, seeds)
	check(err)

	cfg := corleone.DefaultConfig()
	cfg.PricePerQuestion = *price
	cfg.Budget = *budget
	cfg.Seed = *seed
	cfg.Blocker.Shards = *shards
	cfg.Blocker.ShardWorkers = *shardWorkers
	if *verbose || *crowdKind == "self" {
		cfg.Listener = func(e corleone.Event) {
			fmt.Fprintf(os.Stderr, "[%s] %s ($%.2f spent, %d pairs)\n",
				e.Phase, e.Detail, e.Cost, e.Pairs)
		}
	}

	var crowd corleone.Crowd
	if *crowdKind == "self" {
		crowd = &selfCrowd{ds: ds, in: bufio.NewScanner(os.Stdin)}
	} else {
		truth, err := loadGold(*gold)
		check(err)
		ds.Truth = truth
		if *errRate <= 0 {
			crowd = corleone.Oracle(truth)
		} else {
			crowd = corleone.NewSimulatedCrowd(truth, *errRate, *seed*37+5)
		}
	}

	res, err := corleone.Run(ds, crowd, cfg)
	check(err)

	fmt.Fprintf(os.Stderr, "matches: %d\n", len(res.Matches))
	fmt.Fprintf(os.Stderr, "estimated: P=%.1f%%±%.1f R=%.1f%%±%.1f F1=%.1f%%\n",
		100*res.EstimatedPrecision.Point, 100*res.EstimatedPrecision.Margin,
		100*res.EstimatedRecall.Point, 100*res.EstimatedRecall.Margin,
		res.EstimatedF1)
	if res.HasTrue {
		fmt.Fprintf(os.Stderr, "true:      %v\n", res.True)
	}
	fmt.Fprintf(os.Stderr, "cost: $%.2f over %d pairs (%d answers), %d iterations, stopped: %s\n",
		res.Accounting.Cost, res.Accounting.Pairs, res.Accounting.Answers,
		res.Iterations, res.StopReason)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	check(cw.Write([]string{"rowA", "rowB"}))
	for _, m := range res.Matches {
		check(cw.Write([]string{strconv.Itoa(int(m.A)), strconv.Itoa(int(m.B))}))
	}
	cw.Flush()
	check(cw.Error())
}

// selfCrowd renders each question at the terminal and reads a y/n answer —
// the user acts as their own crowd of one.
type selfCrowd struct {
	ds *corleone.Dataset
	in *bufio.Scanner
	n  int
}

func (s *selfCrowd) Answer(p corleone.Pair) bool {
	s.n++
	fmt.Fprintf(os.Stderr, "\n--- question %d ---\n", s.n)
	fmt.Fprintf(os.Stderr, "%s\n", renderPair(s.ds, p))
	for {
		fmt.Fprint(os.Stderr, "match? [y/n] ")
		if !s.in.Scan() {
			return false // EOF: treat as "no"
		}
		switch strings.ToLower(strings.TrimSpace(s.in.Text())) {
		case "y", "yes":
			return true
		case "n", "no":
			return false
		}
	}
}

func renderPair(ds *corleone.Dataset, p corleone.Pair) string {
	var b strings.Builder
	if ds.Instruction != "" {
		fmt.Fprintf(&b, "(%s)\n", ds.Instruction)
	}
	for i, attr := range ds.A.Schema {
		fmt.Fprintf(&b, "  %-14s | %-34s | %s\n", attr.Name,
			ds.A.Rows[p.A][i], ds.B.Rows[p.B][i])
	}
	return b.String()
}

func parseSeeds(s string) ([]corleone.Labeled, error) {
	var out []corleone.Labeled
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("seed %q: want rowA:rowB:yes|no", part)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("seed %q: %v", part, err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("seed %q: %v", part, err)
		}
		var match bool
		switch strings.ToLower(fields[2]) {
		case "yes", "y", "true", "1":
			match = true
		case "no", "n", "false", "0":
			match = false
		default:
			return nil, fmt.Errorf("seed %q: label must be yes or no", part)
		}
		out = append(out, corleone.Labeled{Pair: corleone.P(a, b), Match: match})
	}
	return out, nil
}

func loadGold(path string) (*corleone.GroundTruth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = 2
	var matches []corleone.Pair
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		a, err := strconv.Atoi(strings.TrimSpace(rec[0]))
		if err != nil {
			continue // tolerate a header line
		}
		b, err := strconv.Atoi(strings.TrimSpace(rec[1]))
		if err != nil {
			continue
		}
		matches = append(matches, corleone.P(a, b))
	}
	return corleone.NewGroundTruth(matches), nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "corleone:", err)
		os.Exit(1)
	}
}
