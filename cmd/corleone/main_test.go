package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	corleone "github.com/corleone-em/corleone"
)

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("0:0:yes, 5:3:y,0:1:no,2:9:N")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("seeds = %d", len(got))
	}
	if !got[0].Match || got[0].Pair != corleone.P(0, 0) {
		t.Errorf("seed[0] = %+v", got[0])
	}
	if !got[1].Match || got[1].Pair != corleone.P(5, 3) {
		t.Errorf("seed[1] = %+v", got[1])
	}
	if got[3].Match {
		t.Error("seed[3] should be negative")
	}
	for _, bad := range []string{"", "1:2", "a:b:yes", "1:2:maybe"} {
		if _, err := parseSeeds(bad); err == nil {
			t.Errorf("parseSeeds(%q) accepted", bad)
		}
	}
}

func TestLoadGold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gold.csv")
	if err := os.WriteFile(path, []byte("rowA,rowB\n0,0\n3,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	truth, err := loadGold(path)
	if err != nil {
		t.Fatal(err)
	}
	if truth.NumMatches() != 2 || !truth.Match(corleone.P(3, 5)) {
		t.Errorf("gold = %v", truth.Matches())
	}
	if _, err := loadGold(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRenderPair(t *testing.T) {
	ds := corleone.GenerateDataset(corleone.ScaledProfile(corleone.RestaurantsProfile, 0.1))
	out := renderPair(ds, corleone.P(0, 0))
	if !strings.Contains(out, "name") || !strings.Contains(out, "|") {
		t.Errorf("renderPair = %q", out)
	}
}
