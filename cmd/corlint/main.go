// Command corlint runs the repo's invariant linters (internal/lint) over
// the module and exits nonzero on any unsuppressed finding. It is wired
// into `make lint`, scripts/verify.sh, and CI; see DESIGN.md "Enforced
// invariants" for the rule table.
//
// Usage:
//
//	corlint [./... | dir ...]     lint the module (default ./...)
//	corlint -format=json ./...    machine-readable findings
//	corlint -format=github ./...  GitHub Actions error annotations
//	corlint -rules                print the rule tables
//	corlint -alloc                compiler-backed allocation/escape gate
//	corlint -allocupdate          regenerate the alloc baseline
//	corlint -jsoncheck FILE       validate FILE is well-formed JSON
//
// The -jsoncheck mode exists so scripts/verify.sh can validate bench
// harness output without a Python interpreter on the machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/corleone-em/corleone/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("corlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonFile := fs.String("jsoncheck", "", "validate `file` as JSON and exit (no linting)")
	rules := fs.Bool("rules", false, "print the rule tables and exit")
	format := fs.String("format", "text", "findings output: text, json, or github (Actions annotations)")
	alloc := fs.Bool("alloc", false, "run the compiler-backed allocation gate instead of the rule pipeline")
	allocUpdate := fs.Bool("allocupdate", false, "regenerate the alloc baseline from current compiler output")
	allocBaseline := fs.String("allocbaseline", "lint/allocbaseline.json", "alloc baseline `path`, relative to the module root")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonFile != "" {
		if err := jsonCheck(*jsonFile); err != nil {
			fmt.Fprintf(stderr, "corlint: jsoncheck: %v\n", err)
			return 1
		}
		return 0
	}
	if *rules {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-18s %s\n", r.ID(), r.Doc())
		}
		for _, r := range lint.ProgramRules() {
			fmt.Fprintf(stdout, "%-18s [program] %s\n", r.ID(), r.Doc())
		}
		return 0
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "corlint: unknown -format %q (want text, json, or github)\n", *format)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	if *alloc || *allocUpdate {
		return runAllocGate(root, *allocBaseline, *allocUpdate, stdout, stderr)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	units, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	// A pattern matching nothing exits 1, not 2: in CI a typo'd path is a
	// failed lint run, not a usage error to be ignored.
	units, err = filterUnits(units, fs.Args(), root, loader)
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 1
	}
	findings := lint.Run(units, loader.Srcs, lint.DefaultConfig())
	for i, f := range findings {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}
	emitFindings(stdout, *format, findings)
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "corlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// emitFindings renders the findings in the selected format. The json
// form is one object with a findings array (stable field names, easy to
// consume from CI); the github form is one ::error annotation per
// finding, which Actions turns into inline PR comments.
func emitFindings(out io.Writer, format string, findings []lint.Finding) {
	switch format {
	case "json":
		type jsonFinding struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
			Hint string `json:"hint,omitempty"`
		}
		payload := struct {
			Findings []jsonFinding `json:"findings"`
		}{Findings: []jsonFinding{}}
		for _, f := range findings {
			payload.Findings = append(payload.Findings, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg, Hint: f.Hint,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		enc.Encode(&payload)
	case "github":
		for _, f := range findings {
			msg := f.Msg
			if f.Hint != "" {
				msg += " (hint: " + f.Hint + ")"
			}
			fmt.Fprintf(out, "::error file=%s,line=%d,col=%d::[%s] %s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, escapeAnnotation(msg))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(out, f.String())
		}
	}
}

// escapeAnnotation applies the workflow-command escaping rules for the
// message part of an annotation.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// runAllocGate drives the compiler-backed stage: analyze the hot-path
// packages, then either rewrite the baseline (-allocupdate) or diff
// against it and fail on regressions.
func runAllocGate(root, baselineRel string, update bool, stdout, stderr *os.File) int {
	loader, err := lint.NewLoader(root) // cheap: only reads go.mod for the module path
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	current, err := lint.RunAllocAnalysis(root, loader.ModPath, lint.AllocPackages)
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	baselinePath := filepath.Join(root, filepath.FromSlash(baselineRel))
	if update {
		if err := lint.WriteAllocBaseline(baselinePath, current); err != nil {
			fmt.Fprintf(stderr, "corlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "corlint: alloc baseline written to %s (%d packages)\n", baselineRel, len(current))
		return 0
	}
	baseline, err := lint.ReadAllocBaseline(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	failures, notices := lint.DiffAllocBaseline(baseline, current)
	for _, n := range notices {
		fmt.Fprintf(stdout, "corlint: alloc notice: %s\n", n)
	}
	for _, f := range failures {
		fmt.Fprintln(stdout, f.String())
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "corlint: alloc gate: %d regression(s) vs %s\n", len(failures), baselineRel)
		return 1
	}
	return 0
}

// filterUnits restricts analysis to the requested directories. "./..."
// (or no argument) means the whole module. A pattern that matches no
// loaded package is an error: a typo'd path silently linting nothing
// would look exactly like a clean run.
func filterUnits(units []*lint.Unit, args []string, root string, loader *lint.Loader) ([]*lint.Unit, error) {
	var dirs []string
	var pats []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return units, nil
		}
		pats = append(pats, a)
		a = strings.TrimSuffix(a, "/...")
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, abs)
	}
	if len(dirs) == 0 {
		return units, nil
	}
	modPath := loader.ModPath
	matched := make([]bool, len(dirs))
	var out []*lint.Unit
	for _, u := range units {
		rel := strings.TrimPrefix(strings.TrimPrefix(u.Path, modPath), "/")
		dir := filepath.Join(root, filepath.FromSlash(rel))
		for i, want := range dirs {
			if dir == want || strings.HasPrefix(dir, want+string(filepath.Separator)) {
				matched[i] = true
				out = append(out, u)
				break
			}
		}
	}
	for i, ok := range matched {
		if !ok {
			return nil, fmt.Errorf("pattern %q matches no packages in the module", pats[i])
		}
	}
	return out, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// jsonCheck validates that path holds exactly one well-formed JSON value.
func jsonCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		if syn, ok := err.(*json.SyntaxError); ok {
			line, col := offsetToLineCol(data, syn.Offset)
			return fmt.Errorf("%s:%d:%d: %v", path, line, col, err)
		}
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

func offsetToLineCol(data []byte, off int64) (int, int) {
	line, col := 1, 1
	for i := int64(0); i < off && i < int64(len(data)); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
