// Command corlint runs the repo's invariant linters (internal/lint) over
// the module and exits nonzero on any unsuppressed finding. It is wired
// into `make lint`, scripts/verify.sh, and CI; see DESIGN.md "Enforced
// invariants" for the rule table.
//
// Usage:
//
//	corlint [./... | dir ...]   lint the module (default ./...)
//	corlint -rules              print the rule table
//	corlint -jsoncheck FILE     validate FILE is well-formed JSON
//
// The -jsoncheck mode exists so scripts/verify.sh can validate bench
// harness output without a Python interpreter on the machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/corleone-em/corleone/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("corlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonFile := fs.String("jsoncheck", "", "validate `file` as JSON and exit (no linting)")
	rules := fs.Bool("rules", false, "print the rule table and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonFile != "" {
		if err := jsonCheck(*jsonFile); err != nil {
			fmt.Fprintf(stderr, "corlint: jsoncheck: %v\n", err)
			return 1
		}
		return 0
	}
	if *rules {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-18s %s\n", r.ID(), r.Doc())
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	units, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	units, err = filterUnits(units, fs.Args(), root, loader)
	if err != nil {
		fmt.Fprintf(stderr, "corlint: %v\n", err)
		return 2
	}
	findings := lint.Run(units, loader.Srcs, lint.DefaultConfig())
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Fprintln(stdout, rel.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "corlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// filterUnits restricts analysis to the requested directories. "./..."
// (or no argument) means the whole module.
func filterUnits(units []*lint.Unit, args []string, root string, loader *lint.Loader) ([]*lint.Unit, error) {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return units, nil
		}
		a = strings.TrimSuffix(a, "/...")
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, abs)
	}
	if len(dirs) == 0 {
		return units, nil
	}
	modPath := loader.ModPath
	var out []*lint.Unit
	for _, u := range units {
		rel := strings.TrimPrefix(strings.TrimPrefix(u.Path, modPath), "/")
		dir := filepath.Join(root, filepath.FromSlash(rel))
		for _, want := range dirs {
			if dir == want || strings.HasPrefix(dir, want+string(filepath.Separator)) {
				out = append(out, u)
				break
			}
		}
	}
	return out, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// jsonCheck validates that path holds exactly one well-formed JSON value.
func jsonCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		if syn, ok := err.(*json.SyntaxError); ok {
			line, col := offsetToLineCol(data, syn.Offset)
			return fmt.Errorf("%s:%d:%d: %v", path, line, col, err)
		}
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

func offsetToLineCol(data []byte, off int64) (int, int) {
	line, col := 1, 1
	for i := int64(0); i < off && i < int64(len(data)); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
