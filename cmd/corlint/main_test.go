package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJSONCheck(t *testing.T) {
	if err := jsonCheck(writeTemp(t, `{"benchmarks": [{"name": "x", "ns_op": 1.5}]}`)); err != nil {
		t.Errorf("valid JSON rejected: %v", err)
	}
	if err := jsonCheck(writeTemp(t, `[1, 2, 3]`)); err != nil {
		t.Errorf("valid JSON array rejected: %v", err)
	}

	err := jsonCheck(writeTemp(t, "{\n  \"a\": 1,\n  \"b\": ,\n}"))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// The syntax error is on line 3 (the dangling comma value); the
	// message must carry a file:line:col prefix usable from a CI log.
	if !strings.Contains(err.Error(), ":3:") {
		t.Errorf("error %q does not locate the syntax error on line 3", err)
	}

	if err := jsonCheck(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOffsetToLineCol(t *testing.T) {
	data := []byte("ab\ncde\nf")
	cases := []struct {
		off       int64
		line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // "ab" then the newline itself
		{3, 2, 1}, {5, 2, 3},
		{7, 3, 1},
		{99, 3, 2}, // past EOF clamps to the last position
	}
	for _, tc := range cases {
		line, col := offsetToLineCol(data, tc.off)
		if line != tc.line || col != tc.col {
			t.Errorf("offsetToLineCol(%d) = %d:%d, want %d:%d", tc.off, line, col, tc.line, tc.col)
		}
	}
}

func TestRunJSONCheckExitCodes(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-jsoncheck", writeTemp(t, `{}`)}, devnull, devnull); code != 0 {
		t.Errorf("valid JSON: exit %d, want 0", code)
	}
	if code := run([]string{"-jsoncheck", writeTemp(t, `{`)}, devnull, devnull); code != 1 {
		t.Errorf("truncated JSON: exit %d, want 1", code)
	}
}
