package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/corleone-em/corleone/internal/lint"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJSONCheck(t *testing.T) {
	if err := jsonCheck(writeTemp(t, `{"benchmarks": [{"name": "x", "ns_op": 1.5}]}`)); err != nil {
		t.Errorf("valid JSON rejected: %v", err)
	}
	if err := jsonCheck(writeTemp(t, `[1, 2, 3]`)); err != nil {
		t.Errorf("valid JSON array rejected: %v", err)
	}

	err := jsonCheck(writeTemp(t, "{\n  \"a\": 1,\n  \"b\": ,\n}"))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// The syntax error is on line 3 (the dangling comma value); the
	// message must carry a file:line:col prefix usable from a CI log.
	if !strings.Contains(err.Error(), ":3:") {
		t.Errorf("error %q does not locate the syntax error on line 3", err)
	}

	if err := jsonCheck(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOffsetToLineCol(t *testing.T) {
	data := []byte("ab\ncde\nf")
	cases := []struct {
		off       int64
		line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // "ab" then the newline itself
		{3, 2, 1}, {5, 2, 3},
		{7, 3, 1},
		{99, 3, 2}, // past EOF clamps to the last position
	}
	for _, tc := range cases {
		line, col := offsetToLineCol(data, tc.off)
		if line != tc.line || col != tc.col {
			t.Errorf("offsetToLineCol(%d) = %d:%d, want %d:%d", tc.off, line, col, tc.line, tc.col)
		}
	}
}

func TestRunJSONCheckExitCodes(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-jsoncheck", writeTemp(t, `{}`)}, devnull, devnull); code != 0 {
		t.Errorf("valid JSON: exit %d, want 0", code)
	}
	if code := run([]string{"-jsoncheck", writeTemp(t, `{`)}, devnull, devnull); code != 1 {
		t.Errorf("truncated JSON: exit %d, want 1", code)
	}
}

func sampleFindings() []lint.Finding {
	return []lint.Finding{
		{
			Pos:  token.Position{Filename: "internal/x/y.go", Line: 12, Column: 3},
			Rule: "det-time",
			Msg:  "time.Now reads the wall clock in a deterministic package",
			Hint: "inject the clock",
		},
		{
			Pos:  token.Position{Filename: "internal/z/w.go", Line: 7, Column: 1},
			Rule: "conc-lockorder",
			Msg:  "50% of runs deadlock\nsecond line",
		},
	}
}

func TestEmitFindingsJSON(t *testing.T) {
	var buf bytes.Buffer
	emitFindings(&buf, "json", sampleFindings())
	var payload struct {
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
			Hint string `json:"hint"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(payload.Findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(payload.Findings))
	}
	f := payload.Findings[0]
	if f.File != "internal/x/y.go" || f.Line != 12 || f.Col != 3 || f.Rule != "det-time" || f.Hint != "inject the clock" {
		t.Errorf("first finding mismatch: %+v", f)
	}

	// No findings still emits a parseable document with an empty array.
	buf.Reset()
	emitFindings(&buf, "json", nil)
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty run must emit an empty findings array, got %s", buf.String())
	}
}

func TestEmitFindingsGitHub(t *testing.T) {
	var buf bytes.Buffer
	emitFindings(&buf, "github", sampleFindings())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d annotation lines, want 2:\n%s", len(lines), buf.String())
	}
	if want := "::error file=internal/x/y.go,line=12,col=3::[det-time] "; !strings.HasPrefix(lines[0], want) {
		t.Errorf("annotation = %q, want prefix %q", lines[0], want)
	}
	// Workflow commands are line-oriented: embedded newlines and percent
	// signs must be escaped or the annotation truncates.
	if strings.Contains(lines[1], "\n") || !strings.Contains(lines[1], "50%25 of runs deadlock%0Asecond line") {
		t.Errorf("annotation not escaped: %q", lines[1])
	}
}

func TestFilterUnitsRejectsEmptyMatch(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units := []*lint.Unit{{Path: loader.ModPath + "/internal/par"}}
	if _, err := filterUnits(units, []string{filepath.Join(root, "internal", "par")}, root, loader); err != nil {
		t.Errorf("matching dir rejected: %v", err)
	}
	_, err = filterUnits(units, []string{filepath.Join(root, "internal", "no-such-pkg")}, root, loader)
	if err == nil || !strings.Contains(err.Error(), "matches no packages") {
		t.Errorf("zero-match pattern must error, got %v", err)
	}
}
