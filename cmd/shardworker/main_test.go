package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/corleone-em/corleone/internal/datagen"
	"github.com/corleone-em/corleone/internal/feature"
	"github.com/corleone-em/corleone/internal/shard"
)

// indexableFeature finds a feature the shard index can anchor (the load
// handler rejects specs anchored on non-indexable features).
func indexableFeature(t *testing.T) int {
	t.Helper()
	ds, err := datagen.DatasetFor("restaurants", 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := feature.NewExtractor(ds)
	for i, f := range ex.Features() {
		if f.Kind == "jaccard_w" {
			return i
		}
	}
	t.Fatal("no jaccard_w feature")
	return -1
}

// TestGracefulShutdown pins the signal path: the worker serves until a
// SIGINT arrives, then serve returns cleanly and the listener is closed to
// new connections.
func TestGracefulShutdown(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := shard.NewWorker()
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(lis, w.Handler(), sigs) }()
	base := "http://" + lis.Addr().String()

	// The worker is live: health answers and a job loads + probes.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	spec := shard.JobSpec{Job: "j", Dataset: "restaurants", Scale: 0.2, Shards: 2, Feature: indexableFeature(t)}
	body, _ := json.Marshal(spec)
	resp, err = http.Post(base+"/shard/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load = %d", resp.StatusCode)
	}

	sigs <- syscall.SIGINT
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after signal, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after signal")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}
