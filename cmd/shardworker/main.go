// Command shardworker runs one shard-worker process: an HTTP service that
// lazily rebuilds blocking jobs from their deterministic specs and answers
// shard probe tasks for a coordinating runsvc (or any shard.RemoteExecutor).
// Start several, point runsvc's -shard-endpoints at them, and blocking
// fans out across processes; kill one mid-run and the coordinator's
// retries fail over while the restarted worker rejoins via the lazy-load
// handshake — no state transfer, byte-identical output.
//
// Usage:
//
//	shardworker -addr :9301
//
// API:
//
//	GET  /healthz     liveness probe
//	GET  /metrics     worker counters (jobs loaded, probes, batches)
//	POST /shard/load  make a job spec probeable (idempotent)
//	POST /shard/probe one shard task or a [task, ...] batch; 412 until the
//	                  job is loaded. Responses are content-negotiated: the
//	                  compact binary pair codec (or a length-prefixed frame
//	                  stream for batches) when the client Accepts it, the
//	                  JSON envelope otherwise.
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/corleone-em/corleone/internal/shard"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "shardworker:", err)
		os.Exit(1)
	}
}

// run parses flags, binds the listener, and serves until a termination
// signal arrives. sigs overrides the OS signal source in tests; nil means
// real SIGINT/SIGTERM.
func run(args []string, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("shardworker", flag.ContinueOnError)
	addr := fs.String("addr", ":9301", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if sigs == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		sigs = ch
	}
	w := shard.NewWorker()
	fmt.Fprintf(os.Stderr, "shardworker: listening on %s\n", lis.Addr())
	return serve(lis, w.Handler(), sigs)
}

// serve runs the HTTP server on lis until a signal arrives, then shuts
// down gracefully: the listener closes immediately (no new work is
// accepted) while in-flight probes finish and their responses flush.
func serve(lis net.Listener, h http.Handler, sigs <-chan os.Signal) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-sigs:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
