package main

import "testing"

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		":8080":          ":8080",
		"localhost:9090": ":9090",
		"8080":           ":8080",
	}
	for in, want := range cases {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}
