// Command platform runs the Mechanical-Turk-shaped crowd marketplace as a
// standalone HTTP service, optionally with simulated workers attached —
// the substrate a production Corleone deployment would post HITs to.
//
// Usage:
//
//	platform -addr :8080                      # serve the marketplace
//	platform -addr :8080 -workers 4 -error 0.05 -dataset Restaurants
//	                                          # ...with simulated workers
//	                                          # answering from the named
//	                                          # synthetic dataset's truth
//
// API:
//
//	POST /hits                     create a HIT (JSON body)
//	GET  /hits/{id}                HIT status and collected answers
//	POST /assignments?worker=w     claim the next assignment
//	POST /assignments/{id}/submit  submit answers {"answers":[true,...]}
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/corleone-em/corleone/internal/crowd"
	"github.com/corleone-em/corleone/internal/datagen"
	"github.com/corleone-em/corleone/internal/platform"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulated workers to attach (0 = none)")
	errRate := flag.Float64("error", 0.05, "simulated worker error rate")
	dataset := flag.String("dataset", "Restaurants", "dataset whose gold standard powers the simulated workers")
	scale := flag.Float64("scale", 0.5, "dataset scale for the simulated workers")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	server := platform.NewServer()

	if *workers > 0 {
		base, ok := datagen.ProfileByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "platform: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		ds := datagen.Generate(datagen.Scaled(base, *scale))
		model := crowd.NewSimulated(ds.Truth, *errRate, *seed)
		// The workers poll through the HTTP API like external processes
		// would, keeping the service honest.
		client := platform.NewClient("http://localhost" + normalizeAddr(*addr))
		//corlint:allow conc-nojoin — deliberate fire-and-forget: the worker pool lives for the whole process, and main blocks in ListenAndServe below
		go func() {
			// Give the listener a moment to come up before polling starts.
			time.Sleep(200 * time.Millisecond)
			platform.StartWorkers(client, *workers, model, 50*time.Millisecond)
		}()
		fmt.Fprintf(os.Stderr, "platform: %d simulated workers (%.0f%% error) answering from %s\n",
			*workers, 100**errRate, ds.Name)
	}

	fmt.Fprintf(os.Stderr, "platform: marketplace listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, server.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "platform:", err)
		os.Exit(1)
	}
}

func normalizeAddr(addr string) string {
	if addr != "" && addr[0] == ':' {
		return addr
	}
	// host:port given; strip host for the local client.
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return ":" + addr
}
