// Command datagen emits the synthetic evaluation datasets as CSV files:
// tableA.csv, tableB.csv, gold.csv (true match pairs), and seeds.txt (the
// four user-supplied examples in cmd/corleone's -seeds syntax).
//
// Usage:
//
//	datagen -dataset Products -scale 0.12 -dir ./products
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/corleone-em/corleone/internal/datagen"
)

func main() {
	name := flag.String("dataset", "Restaurants", "Restaurants | Citations | Products | Scale-1M")
	scale := flag.Float64("scale", 1.0, "scale factor for table sizes")
	seed := flag.Int64("seed", 0, "override the profile's generation seed (0 = default)")
	dir := flag.String("dir", ".", "output directory")
	flag.Parse()

	base, ok := datagen.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	p := datagen.Scaled(base, *scale)
	if *seed != 0 {
		p.Seed = *seed
	}
	ds := datagen.Generate(p)

	check(os.MkdirAll(*dir, 0o755))
	writeFile := func(name string, write func(w io.Writer) error) {
		f, err := os.Create(filepath.Join(*dir, name))
		check(err)
		defer f.Close()
		check(write(f))
	}
	writeFile("tableA.csv", ds.A.WriteCSV)
	writeFile("tableB.csv", ds.B.WriteCSV)
	writeFile("gold.csv", func(f io.Writer) error {
		for _, m := range ds.Truth.Matches() {
			if _, err := fmt.Fprintf(f, "%d,%d\n", m.A, m.B); err != nil {
				return err
			}
		}
		return nil
	})
	writeFile("seeds.txt", func(f io.Writer) error {
		var parts []string
		for _, s := range ds.Seeds {
			lbl := "no"
			if s.Match {
				lbl = "yes"
			}
			parts = append(parts, fmt.Sprintf("%d:%d:%s", s.Pair.A, s.Pair.B, lbl))
		}
		_, err := fmt.Fprintln(f, strings.Join(parts, ","))
		return err
	})
	fmt.Printf("%s: |A|=%d |B|=%d matches=%d density=%.4f%% -> %s\n",
		ds.Name, ds.A.Len(), ds.B.Len(), ds.Truth.NumMatches(),
		100*ds.PositiveDensity(), *dir)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
