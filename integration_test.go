package corleone

import (
	"bytes"
	"testing"
)

// TestIntegrationJournalistScenario drives the README's headline scenario
// end to end through the public API only: CSV-shaped data with inferred
// schema, a noisy crowd, a budget, progress events, model persistence, and
// label-cache reuse semantics.
func TestIntegrationJournalistScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline integration")
	}
	// The "two donor lists" stand-in, with gold truth for the simulation.
	ds := GenerateDataset(ScaledProfile(RestaurantsProfile, 0.5))
	crowd := NewSimulatedCrowd(ds.Truth, 0.05, 101)

	cfg := DefaultConfig()
	cfg.Seed = 103
	cfg.Budget = 50
	var phases []string
	cfg.Listener = func(e Event) { phases = append(phases, e.Phase) }

	res, err := Run(ds, crowd, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The user's deliverables: matches + a trustworthy estimate.
	if len(res.Matches) == 0 {
		t.Fatal("no matches")
	}
	if res.EstimatedF1 <= 0 {
		t.Error("no accuracy estimate")
	}
	gap := res.EstimatedF1 - res.True.F1
	if gap < 0 {
		gap = -gap
	}
	if gap > 10 {
		t.Errorf("estimate off by %.1f points (est %.1f vs true %.1f)",
			gap, res.EstimatedF1, res.True.F1)
	}
	if res.Accounting.Cost > cfg.Budget {
		t.Errorf("budget exceeded: $%.2f", res.Accounting.Cost)
	}
	if len(phases) == 0 {
		t.Error("no progress events")
	}

	// The model survives a save/load cycle and keeps matching.
	var buf bytes.Buffer
	if err := res.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	model, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := model.Match(ds)
	if err != nil {
		t.Fatal(err)
	}
	if m := EvaluateMatches(pred, ds.Truth); m.F1 < 85 {
		t.Errorf("reloaded model F1 = %.1f", m.F1)
	}
}

// TestIntegrationAllDatasetsShort is the cheapest full-pipeline sweep over
// all three dataset shapes — a smoke alarm for cross-module regressions.
func TestIntegrationAllDatasetsShort(t *testing.T) {
	if testing.Short() {
		t.Skip("three pipeline runs")
	}
	for _, tc := range []struct {
		name  string
		scale float64
		minF1 float64
	}{
		{"Restaurants", 0.3, 85},
		{"Citations", 0.03, 75},
		{"Products", 0.05, 55},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var profile DatasetProfile
			switch tc.name {
			case "Restaurants":
				profile = RestaurantsProfile
			case "Citations":
				profile = CitationsProfile
			case "Products":
				profile = ProductsProfile
			}
			ds := GenerateDataset(ScaledProfile(profile, tc.scale))
			cfg := DefaultConfig()
			cfg.Seed = 107
			cfg.Blocker.TB = int(ds.CartesianSize()/4) + 1
			res, err := Run(ds, NewSimulatedCrowd(ds.Truth, 0.05, 109), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.True.F1 < tc.minF1 {
				t.Errorf("F1 = %.1f, want >= %.0f", res.True.F1, tc.minF1)
			}
		})
	}
}
